(** Hodor runtime: trampoline rights amplification, fault tolerance
    (poisoning, kill-with-grace), loader scan + euid dance. *)

module Library = Hodor.Library
module Trampoline = Hodor.Trampoline
module Loader = Hodor.Loader
module Process = Simos.Process
module Region = Shm.Region

let () = Hodor.Runtime.reset ()

let with_lib ?protection ?copy_args ?grace_ns f =
  let lib =
    Library.create ?protection ?copy_args ?grace_ns ~name:"testlib"
      ~owner_uid:1000 ()
  in
  Fun.protect ~finally:(fun () -> Library.release lib) (fun () -> f lib)

let with_protected_region f =
  with_lib (fun lib ->
    let region = Region.create ~name:"res" ~size:8192 ~pkey:0 () in
    Library.protect_region lib region;
    f lib region)

let test_rights_amplification () =
  with_protected_region (fun lib region ->
    Pku.Pkru.reset_thread ();
    (* outside: denied *)
    (match Region.read_u8 region 0 with
     | _ -> Alcotest.fail "expected fault outside the library"
     | exception Pku.Fault.Protection_fault _ -> ());
    (* inside: allowed *)
    let v =
      Trampoline.call lib (fun () ->
        Region.write_u8 region 0 42;
        Region.read_u8 region 0)
    in
    Alcotest.(check int) "inside the call" 42 v;
    (* and denied again after return *)
    (match Region.read_u8 region 0 with
     | _ -> Alcotest.fail "rights must drop on the way out"
     | exception Pku.Fault.Protection_fault _ -> ()))

let test_pkru_restored_even_on_nested_calls () =
  with_protected_region (fun lib region ->
    Pku.Pkru.reset_thread ();
    let saved = Pku.Pkru.read () in
    Trampoline.call lib (fun () ->
      Alcotest.(check bool) "on library stack" true
        (Trampoline.on_library_stack ());
      Trampoline.call lib (fun () -> Region.write_u8 region 9 1);
      Alcotest.(check int) "still inside after nested return" 1
        (Region.read_u8 region 9));
    Alcotest.(check bool) "off library stack" false
      (Trampoline.on_library_stack ());
    Alcotest.(check int) "pkru restored" saved (Pku.Pkru.read ()))

let test_unprotected_mode_skips_pkru () =
  with_lib ~protection:Library.Unprotected (fun lib ->
    Alcotest.(check int) "key 0" Pku.Pkey.default (Library.pkey lib);
    let before = Pku.Pkru.read () in
    Trampoline.call lib (fun () ->
      Alcotest.(check int) "pkru untouched" before (Pku.Pkru.read ())))

let test_crash_inside_poisons () =
  with_lib (fun lib ->
    (match Trampoline.call lib (fun () -> failwith "segfault!") with
     | _ -> Alcotest.fail "expected Library_call_failed"
     | exception Trampoline.Library_call_failed ("testlib", Failure _) -> ());
    Alcotest.(check bool) "poisoned" true (Library.poisoned lib <> None);
    (* every subsequent call is refused *)
    (match Trampoline.call lib (fun () -> ()) with
     | () -> Alcotest.fail "expected Library_poisoned"
     | exception Library.Library_poisoned _ -> ()))

let test_kill_mid_call_completes_within_grace () =
  Hodor.Runtime.reset ();
  with_lib ~grace_ns:1_000_000_000 (fun lib ->
    let p = Process.make ~uid:1 "victim" in
    Process.with_process p (fun () ->
      let side_effect = ref false in
      (match
         Trampoline.call lib (fun () ->
           (* the process dies while we're inside *)
           Process.kill ~now_ns:(Hodor.Runtime.now_ns ()) p;
           side_effect := true)
       with
      | () -> Alcotest.fail "thread must observe its death after the call"
      | exception Process.Process_killed _ -> ());
      Alcotest.(check bool) "the call itself completed" true !side_effect;
      Alcotest.(check bool) "library not poisoned" true
        (Library.poisoned lib = None)))

(* Drive time with a fake clock so grace arithmetic is exact to the
   nanosecond. *)
let with_fake_clock f =
  let now = ref 0 in
  Hodor.Runtime.configure ~advance:(fun n -> now := !now + n)
    ~now:(fun () -> !now);
  Fun.protect ~finally:Hodor.Runtime.reset (fun () -> f now)

(* Kill the current process mid-call, stretch the call so it returns
   exactly [overrun] ns after the kill, and report the library's
   health afterwards. *)
let killed_call_health ~grace_ns ~overrun =
  with_fake_clock (fun now ->
    with_lib ~grace_ns (fun lib ->
      let p = Process.make ~uid:1 "victim" in
      Process.with_process p (fun () ->
        (match
           Trampoline.call lib (fun () ->
             Process.kill ~now_ns:!now p;
             now := !now + overrun)
         with
        | () -> Alcotest.fail "the dying thread must observe its death"
        | exception Process.Process_killed _ -> ());
        Library.health lib)))

let test_kill_beyond_grace_needs_recovery () =
  with_fake_clock (fun now ->
    with_lib ~grace_ns:1_000 (fun lib ->
      let healed = ref 0 in
      Library.set_recover lib (fun () -> incr healed);
      let p = Process.make ~uid:1 "victim" in
      Process.with_process p (fun () ->
        (match
           Trampoline.call lib (fun () ->
             Process.kill ~now_ns:!now p;
             (* the call drags on past the grace period *)
             now := !now + 10_000)
         with
        | () -> Alcotest.fail "expected kill"
        | exception Process.Process_killed _ -> ());
        Alcotest.(check bool) "killed-in-call, not poisoned" true
          (Library.killed lib <> None && Library.poisoned lib = None));
      (* recoverable: callers are refused until recovery has run... *)
      let q = Process.make ~uid:2 "next-client" in
      Process.with_process q (fun () ->
        match Trampoline.call lib (fun () -> ()) with
        | () -> Alcotest.fail "expected Library_needs_recovery"
        | exception Library.Library_needs_recovery _ -> ());
      (* ...and admitted again afterwards *)
      Library.recover lib;
      Alcotest.(check int) "recovery routine ran" 1 !healed;
      Alcotest.(check bool) "healthy again" true (Library.health lib = Library.Healthy);
      Process.with_process q (fun () -> Trampoline.call lib (fun () -> ()))))

let test_grace_boundary_exact () =
  (* Covered iff end - kill <= grace: exactly at the boundary the OS
     still waits for the call. *)
  Alcotest.(check bool) "overrun = grace: covered" true
    (killed_call_health ~grace_ns:1_000 ~overrun:1_000 = Library.Healthy);
  Alcotest.(check bool) "one ns short: covered" true
    (killed_call_health ~grace_ns:1_000 ~overrun:999 = Library.Healthy);
  (match killed_call_health ~grace_ns:1_000 ~overrun:1_001 with
   | Library.Killed_in_call _ -> ()
   | _ -> Alcotest.fail "one ns past the grace must mark the library killed")

let test_second_kill_during_grace_keeps_first_timestamp () =
  with_fake_clock (fun now ->
    with_lib ~grace_ns:1_000 (fun lib ->
      let p = Process.make ~uid:1 "victim" in
      Process.with_process p (fun () ->
        (match
           Trampoline.call lib (fun () ->
             let t0 = !now in
             Process.kill ~now_ns:t0 p;
             now := !now + 600;
             (* a second SIGKILL lands during the grace window: counted,
                but the first death timestamp keeps governing the
                arithmetic — were the second to replace it, this call
                would look covered (900 <= 1000) instead of overrun
                (1500 > 1000) *)
             Process.kill ~now_ns:!now p;
             Alcotest.(check int) "both kills counted" 2 (Process.kill_count p);
             Alcotest.(check (option int)) "first timestamp kept" (Some t0)
               (Process.killed_at p);
             now := !now + 900)
         with
        | () -> Alcotest.fail "expected kill"
        | exception Process.Process_killed _ -> ());
        match Library.health lib with
        | Library.Killed_in_call _ -> ()
        | _ ->
          Alcotest.fail
            "overrun must be measured from the first kill, not the duplicate")))

let test_duplicate_kill_cannot_rewind_time () =
  let p = Process.make ~uid:1 "victim" in
  Process.kill ~now_ns:100 p;
  (match Process.kill ~now_ns:50 p with
   | () -> Alcotest.fail "a duplicate kill timestamped in the past is a bug"
   | exception Invalid_argument _ -> ());
  (* a later duplicate is a counted no-op *)
  Process.kill ~now_ns:200 p;
  Alcotest.(check (option int)) "first timestamp kept" (Some 100)
    (Process.killed_at p);
  Alcotest.(check int) "all three deliveries counted" 3 (Process.kill_count p)

let test_poison_dominates_killed () =
  with_lib (fun lib ->
    Library.mark_killed lib "killed past grace";
    Library.poison lib "then the code crashed";
    Alcotest.(check bool) "poisoned wins" true (Library.poisoned lib <> None);
    match Library.recover lib with
    | () -> Alcotest.fail "a poisoned library must refuse recovery"
    | exception Library.Library_poisoned _ -> ())

let test_recover_on_healthy_library () =
  (* A kill so abrupt no trampoline observed it leaves the library
     Healthy but the store torn: recovery must be callable anyway. *)
  with_lib (fun lib ->
    let healed = ref 0 in
    Library.set_recover lib (fun () -> incr healed);
    Library.recover lib;
    Library.recover lib;
    Alcotest.(check int) "idempotent at quiescence" 2 !healed;
    Alcotest.(check bool) "still healthy" true
      (Library.health lib = Library.Healthy))

let test_dead_process_cannot_enter () =
  with_lib (fun lib ->
    let p = Process.make ~uid:1 "corpse" in
    Process.kill ~now_ns:0 p;
    Process.with_process p (fun () ->
      match Trampoline.call lib (fun () -> ()) with
      | () -> Alcotest.fail "expected refusal"
      | exception Process.Process_killed _ -> ()))

let test_arg_copy_snapshot () =
  with_lib ~copy_args:true (fun lib ->
    let buf = Bytes.of_string "secret" in
    let seen_inside =
      Trampoline.call_with_arg lib ~arg:buf (fun snapshot ->
        (* a concurrent client thread could be scribbling on [buf];
           the library must be working on its own copy *)
        Bytes.set buf 0 'X';
        Bytes.to_string snapshot)
    in
    Alcotest.(check string) "snapshot unaffected by caller mutation" "secret"
      seen_inside)

let test_arg_no_copy_shares () =
  with_lib ~copy_args:false (fun lib ->
    let buf = Bytes.of_string "shared" in
    Trampoline.call_with_arg lib ~arg:buf (fun inside ->
      Alcotest.(check bool) "same buffer without copying" true (inside == buf)))

let test_two_libraries_distinct_keys () =
  with_lib (fun lib_a ->
    with_lib (fun lib_b ->
      let ra = Region.create ~name:"a" ~size:4096 ~pkey:0 () in
      let rb = Region.create ~name:"b" ~size:4096 ~pkey:0 () in
      Library.protect_region lib_a ra;
      Library.protect_region lib_b rb;
      Alcotest.(check bool) "different keys" true
        (Library.pkey lib_a <> Library.pkey lib_b);
      Pku.Pkru.reset_thread ();
      (* inside library A, region B stays sealed *)
      Trampoline.call lib_a (fun () ->
        Region.write_u8 ra 0 1;
        match Region.read_u8 rb 0 with
        | _ -> Alcotest.fail "library A must not see library B's region"
        | exception Pku.Fault.Protection_fault _ -> ())))

let test_multi_arg_copy () =
  with_lib ~copy_args:true (fun lib ->
    let k = Bytes.of_string "key" and v = Bytes.of_string "value" in
    let seen =
      Trampoline.call_with_args lib ~args:[ k; v ] (fun args ->
        Bytes.fill k 0 3 'X';
        Bytes.fill v 0 5 'Y';
        List.map Bytes.to_string args)
    in
    Alcotest.(check (list string)) "snapshots of every argument"
      [ "key"; "value" ] seen)

let test_runtime_hooks_charge_cost () =
  let charged = ref 0 in
  Hodor.Runtime.configure ~advance:(fun n -> charged := !charged + n)
    ~now:(fun () -> 0);
  Fun.protect ~finally:Hodor.Runtime.reset (fun () ->
    with_lib (fun lib ->
      Trampoline.call lib (fun () -> ());
      Alcotest.(check int) "trampoline cost charged"
        Platform.Cost_model.current.trampoline_hodor !charged))

let test_release_recycles_pkey () =
  let lib = Library.create ~name:"short-lived" ~owner_uid:0 () in
  let k = Library.pkey lib in
  Library.release lib;
  let k2 = Pku.Pkey.alloc () in
  Alcotest.(check int) "pkey recycled after release" k k2;
  Pku.Pkey.free k2

let test_loader_scan_breakpoints () =
  let open Pku.Insn in
  let dr = Pku.Debug_regs.create () in
  let b =
    make ~trampolines:[ 0 ] "app"
      [| Wrpkru 0; Compute 1; Wrpkru 7; Compute 1; Wrpkru 7 |]
  in
  let report = Loader.scan_and_arm dr b in
  Alcotest.(check int) "two strays" 2 report.Loader.strays_found;
  Alcotest.(check int) "both got breakpoints" 2 report.Loader.breakpoints;
  Alcotest.(check int) "no page fallback needed" 0 report.Loader.pages_gated

let test_loader_page_fallback_beyond_four () =
  let open Pku.Insn in
  let dr = Pku.Debug_regs.create () in
  let text = Array.init 6 (fun _ -> Wrpkru 9) in
  let report = Loader.scan_and_arm dr (make "evil" text) in
  Alcotest.(check int) "six strays" 6 report.Loader.strays_found;
  Alcotest.(check int) "four breakpoints" 4 report.Loader.breakpoints;
  Alcotest.(check int) "rest gated by pages" 2 report.Loader.pages_gated

let test_exec_traps_stray_wrpkru () =
  let open Pku.Insn in
  with_lib (fun lib ->
    let dr = Pku.Debug_regs.create () in
    let b = make "app" [| Compute 1; Wrpkru 0 |] in
    ignore (Loader.scan_and_arm dr b);
    (match Loader.exec dr lib b with
     | () -> Alcotest.fail "expected Breakpoint_trap"
     | exception Pku.Fault.Breakpoint_trap _ -> ()))

let test_exec_unscanned_binary_is_the_attack () =
  let open Pku.Insn in
  with_protected_region (fun lib region ->
    Pku.Pkru.reset_thread ();
    let dr = Pku.Debug_regs.create () in
    (* NOT scanned: the stray executes and opens the key -- showing
       exactly what the loader protects against. *)
    let evil_pkru =
      Pku.Pkru.set_perm (Pku.Pkru.read ()) (Library.pkey lib) Pku.Pkru.Enable
    in
    let b = make "evil" [| Wrpkru evil_pkru |] in
    Loader.exec dr lib b;
    Alcotest.(check int) "attacker reads the protected region" 0
      (Region.read_u8 region 0);
    Pku.Pkru.reset_thread ())

let test_exec_calls_exports_via_trampoline () =
  with_protected_region (fun lib region ->
    Pku.Pkru.reset_thread ();
    Library.export lib ~entry:"bump" (fun () ->
      Region.write_u8 region 0 (Region.read_u8 region 0 + 1));
    let dr = Pku.Debug_regs.create () in
    let b = Pku.Insn.make "app" [| Pku.Insn.Call "bump"; Pku.Insn.Call "bump" |] in
    Loader.exec dr lib b;
    Alcotest.(check int) "export ran twice with rights" 2
      (Region.kernel_mode (fun () -> Region.read_u8 region 0)))

let test_init_library_euid_dance () =
  with_lib (fun lib ->
    let region = Region.create ~name:"store" ~size:4096 ~pkey:0 () in
    Simos.Sim_fs.create_file ~path:"/kv/store" ~owner:1000 ~mode:0o600 region;
    Fun.protect ~finally:(fun () -> Simos.Sim_fs.unlink "/kv/store")
      (fun () ->
        let client = Process.make ~uid:2000 "client" in
        let inited = ref false in
        Library.set_init lib (fun () ->
          inited := true;
          (* during init we run with the owner's euid *)
          Alcotest.(check int) "euid amplified" 1000
            (Process.euid (Process.current ())));
        Process.with_process client (fun () ->
          let r = Loader.init_library lib ~store_path:"/kv/store" in
          Alcotest.(check bool) "same region" true (r == region);
          Alcotest.(check int) "euid reverted" 2000
            (Process.euid (Process.current ())));
        Alcotest.(check bool) "init ran" true !inited))

let () =
  Alcotest.run "hodor"
    [ ( "trampoline",
        [ Alcotest.test_case "rights amplification" `Quick
            test_rights_amplification;
          Alcotest.test_case "pkru restore + nesting" `Quick
            test_pkru_restored_even_on_nested_calls;
          Alcotest.test_case "unprotected mode" `Quick
            test_unprotected_mode_skips_pkru;
          Alcotest.test_case "arg copy snapshots" `Quick test_arg_copy_snapshot;
          Alcotest.test_case "no-copy shares" `Quick test_arg_no_copy_shares ] );
      ( "fault tolerance",
        [ Alcotest.test_case "crash poisons" `Quick test_crash_inside_poisons;
          Alcotest.test_case "kill mid-call completes" `Quick
            test_kill_mid_call_completes_within_grace;
          Alcotest.test_case "kill beyond grace needs recovery" `Quick
            test_kill_beyond_grace_needs_recovery;
          Alcotest.test_case "grace boundary to the ns" `Quick
            test_grace_boundary_exact;
          Alcotest.test_case "second kill during grace" `Quick
            test_second_kill_during_grace_keeps_first_timestamp;
          Alcotest.test_case "duplicate kill can't rewind time" `Quick
            test_duplicate_kill_cannot_rewind_time;
          Alcotest.test_case "poison dominates killed" `Quick
            test_poison_dominates_killed;
          Alcotest.test_case "recover while healthy" `Quick
            test_recover_on_healthy_library;
          Alcotest.test_case "dead process refused" `Quick
            test_dead_process_cannot_enter ] );
      ( "loader",
        [ Alcotest.test_case "scan installs breakpoints" `Quick
            test_loader_scan_breakpoints;
          Alcotest.test_case "page fallback past 4" `Quick
            test_loader_page_fallback_beyond_four;
          Alcotest.test_case "stray wrpkru traps" `Quick
            test_exec_traps_stray_wrpkru;
          Alcotest.test_case "unscanned binary attack" `Quick
            test_exec_unscanned_binary_is_the_attack;
          Alcotest.test_case "exported calls trampoline" `Quick
            test_exec_calls_exports_via_trampoline;
          Alcotest.test_case "init euid dance" `Quick
            test_init_library_euid_dance ] );
      ( "composition",
        [ Alcotest.test_case "two libraries, two keys" `Quick
            test_two_libraries_distinct_keys;
          Alcotest.test_case "multi-arg copy" `Quick test_multi_arg_copy;
          Alcotest.test_case "runtime hooks" `Quick
            test_runtime_hooks_charge_cost;
          Alcotest.test_case "pkey recycling" `Quick
            test_release_recycles_pkey ] ) ]
