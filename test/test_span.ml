(** Causal span trees: tree shape, sampling, the slow-op log, phase
    attribution (self times summing exactly to end-to-end latency),
    stripe-contention profiling, and the well-formedness property under
    seeded Vm schedules — including aborted flushes at injected kill
    sites. *)

module Span = Telemetry.Span
module Contention = Telemetry.Contention
module Process = Simos.Process
module Store = Mc_core.Store

let fresh () =
  Telemetry.Control.set_enabled true;
  (* a prior failed test may have left a live trace in this thread's
     TLS; flush it so it cannot swallow our ingresses as children *)
  Telemetry.Span.flush_aborted ();
  Telemetry.Counters.reset_backend ();
  Telemetry.Timers.reset ();
  Telemetry.Trace.clear ();
  Telemetry.Trace.set_level Telemetry.Trace.Info;
  Span.set_sampling 1;
  Span.set_slow_threshold_ns 0;
  Span.reset ();
  Contention.reset ()

(* A hand-cranked clock, for tests that run on the host thread with no
   Vm to install a virtual one. *)
let with_clock f =
  let t = ref 0 in
  let prev = Telemetry.Control.install_now (fun () -> !t) in
  Fun.protect
    ~finally:(fun () -> Telemetry.Control.restore_now prev)
    (fun () -> f t)

let ok_or_fail tr =
  match Span.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let sum_self tr = List.fold_left (fun a (_, s) -> a + s) 0 (Span.self_times tr)

(* ---- Tree building --------------------------------------------------- *)

let test_tree_shape () =
  fresh ();
  with_clock (fun t ->
    let root = Span.ingress ~op:"op" () in
    Alcotest.(check bool) "trace in flight" true (Span.active ());
    t := 10;
    let a = Span.start ~phase:"a" () in
    t := 20;
    let b = Span.start ~phase:"b" () in
    t := 30;
    Span.finish b;
    t := 45;
    Span.finish a;
    let c = Span.start ~phase:"c" () in
    t := 60;
    Span.finish c;
    t := 100;
    Span.finish root;
    Alcotest.(check bool) "trace completed" false (Span.active ());
    match Span.traces () with
    | [ tr ] ->
      ok_or_fail tr;
      Alcotest.(check (list string))
        "phases in preorder" [ "op"; "a"; "b"; "c" ]
        (List.map (fun s -> s.Span.phase) tr.Span.spans);
      Alcotest.(check (list int))
        "parent links" [ -1; 0; 1; 0 ]
        (List.map (fun s -> s.Span.parent) tr.Span.spans);
      Alcotest.(check int) "duration" 100 (Span.duration tr);
      Alcotest.(check int) "self times sum exactly to e2e" 100 (sum_self tr);
      Alcotest.(check (option int))
        "b's self is its whole window" (Some 10)
        (List.assoc_opt "b" (Span.self_times tr));
      let txt = Span.render_tree tr in
      let contains needle =
        let n = String.length needle and h = String.length txt in
        let rec go i =
          i + n <= h && (String.sub txt i n = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "render mentions %s" needle)
            true (contains needle))
        [ "op"; "a"; "b"; "c"; "100 ns" ]
    | trs -> Alcotest.fail (Printf.sprintf "expected 1 trace, got %d"
                              (List.length trs)))

let test_nested_ingress_degrades () =
  fresh ();
  let outer = Span.ingress ~op:"outer" () in
  let inner = Span.ingress ~op:"inner" () in
  Span.finish inner;
  Span.finish outer;
  match Span.traces () with
  | [ tr ] ->
    ok_or_fail tr;
    Alcotest.(check (list string))
      "inner op became a child phase" [ "outer"; "inner" ]
      (List.map (fun s -> s.Span.phase) tr.Span.spans)
  | trs ->
    Alcotest.fail (Printf.sprintf "expected 1 trace, got %d" (List.length trs))

let test_sampling () =
  fresh ();
  Span.set_sampling 2;
  for _ = 1 to 10 do
    Span.finish (Span.ingress ~op:"s" ())
  done;
  Alcotest.(check int) "1-in-2 keeps half" 5 (List.length (Span.traces ()));
  (* burn the next sampled slot (n=10) so "u" draws an unsampled ticket *)
  Span.finish (Span.ingress ~op:"s" ());
  (* an unsampled trace still tracks liveness but starts no children *)
  let r = Span.ingress ~op:"u" () in
  Alcotest.(check bool) "unsampled trace is live" true (Span.active ());
  Alcotest.(check bool) "no child spans under it" true
    (Span.start ~phase:"x" () = Span.null);
  Span.finish r;
  Span.set_sampling 0;
  Alcotest.(check bool) "sampling 0 mints nothing" true
    (Span.ingress ~op:"z" () = Span.null);
  Alcotest.(check bool) "nothing in flight" false (Span.active ())

let test_slow_log () =
  fresh ();
  with_clock (fun t ->
    Span.set_slow_threshold_ns 50;
    (* trace 0 is always sampled (0 mod n = 0); burn it fast, then let
       the unsampled trace 1 run slow *)
    Span.set_sampling 1_000_000;
    Span.finish (Span.ingress ~op:"fast" ());
    let r = Span.ingress ~op:"slow-op" () in
    Alcotest.(check bool) "child start is null while unsampled" true
      (Span.start ~phase:"x" () = Span.null);
    t := !t + 100;
    Span.finish r;
    match Span.slow_traces () with
    | [ tr ] ->
      Alcotest.(check string) "the slow op was kept" "slow-op" tr.Span.root_op;
      Alcotest.(check bool) "kept despite the sampling draw" false
        tr.Span.sampled;
      Alcotest.(check int) "root-only" 1 (List.length tr.Span.spans);
      Alcotest.(check bool) "echoed to the trace ring" true
        (List.exists
           (fun e -> e.Telemetry.Trace.subsys = "span")
           (Telemetry.Trace.dump ()))
    | trs ->
      Alcotest.fail
        (Printf.sprintf "expected 1 slow trace, got %d" (List.length trs)))

let test_drop_semantics () =
  fresh ();
  (* dropped root: the whole trace vanishes *)
  let r = Span.ingress ~op:"doomed" () in
  Span.drop r;
  Alcotest.(check int) "dropped root buffers nothing" 0
    (List.length (Span.traces ()));
  Alcotest.(check bool) "nothing in flight" false (Span.active ());
  (* dropped child: flagged aborted, trace survives *)
  let r = Span.ingress ~op:"kept" () in
  let c = Span.start ~phase:"bad" () in
  Span.drop c;
  Span.finish r;
  match Span.traces () with
  | [ tr ] ->
    ok_or_fail tr;
    let bad = List.nth tr.Span.spans 1 in
    Alcotest.(check bool) "child flagged aborted" true bad.Span.s_aborted;
    Alcotest.(check bool) "trace itself not aborted" false tr.Span.t_aborted
  | trs ->
    Alcotest.fail (Printf.sprintf "expected 1 trace, got %d" (List.length trs))

(* ---- Phase attribution ------------------------------------------------ *)

let test_attribution_sums_to_e2e () =
  fresh ();
  with_clock (fun t ->
    for i = 1 to 20 do
      let r = Span.ingress ~op:"op" () in
      t := !t + i;
      let a = Span.start ~phase:"a" () in
      t := !t + (3 * i);
      Span.finish a;
      t := !t + 7;
      Span.finish r
    done;
    let phases = Span.phase_report () in
    let e2e = Span.e2e_report () in
    let total =
      List.fold_left (fun acc (_, s) -> acc + s.Span.p_self_ns) 0 phases
    in
    Alcotest.(check int) "sigma phase self == e2e total" e2e.Span.p_self_ns
      total;
    Alcotest.(check int) "every trace folded" 20 e2e.Span.p_count;
    (* the kv surface agrees with the report *)
    let kvs = Span.phase_kvs () in
    let kv_total =
      List.fold_left
        (fun acc (k, v) ->
          let is_self =
            String.length k > 8
            && String.sub k 0 6 = "phase:"
            && String.sub k (String.length k - 8) 8 = ":self_ns"
          in
          if is_self then acc + int_of_string v else acc)
        0 kvs
    in
    Alcotest.(check (option string))
      "e2e row matches" (Some (string_of_int kv_total))
      (List.assoc_opt "e2e:total_ns" kvs);
    (* reset_phases clears accumulators but keeps the raw traces *)
    Span.reset_phases ();
    Alcotest.(check int) "accumulators cleared" 0
      (Span.e2e_report ()).Span.p_count;
    Alcotest.(check bool) "trace buffers survive" true (Span.traces () <> []);
    Span.reset ();
    Alcotest.(check int) "full reset clears buffers too" 0
      (List.length (Span.traces ())))

(* ---- The full stack under seeded Vm schedules ------------------------- *)

module VCl = Core.Client.Make (Vm.Sync)
module Plib = VCl.Plib

let cfg =
  { Store.default_config with hashpower = 7; lock_count = 4; lru_count = 2;
    stats_slots = 2 }

let fresh_path = ref 0

(* A contended mixed workload: [threads] clients over one shared store,
   single-ops, mgets and mixed batches, keys chosen to collide on a
   handful of stripes. Returns every completed trace. *)
let run_vm_workload ~seed ~threads () =
  fresh ();
  incr fresh_path;
  let path = Printf.sprintf "/shm/span-%d-%d" seed !fresh_path in
  let owner = Process.make ~uid:1000 "bk-span" in
  let p = Plib.create ~store_cfg:cfg ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Pkru.reset_thread ())
    (fun () ->
      let vm = Vm.create ~sched_seed:seed ~preempt_jitter:40 () in
      for i = 0 to threads - 1 do
        ignore
          (Vm.spawn vm
             ~name:(Printf.sprintf "client%d" i)
             (fun () ->
               let proc = Process.make ~uid:(2000 + i) "app" in
               Process.with_process proc (fun () ->
                 for j = 0 to 11 do
                   let k = Printf.sprintf "k-%d" (j mod 3) in
                   match j mod 4 with
                   | 0 -> ignore (Plib.set p k (String.make 60 'x'))
                   | 1 -> ignore (Plib.get p k)
                   | 2 -> ignore (Plib.mget p [ "k-0"; "k-1"; "k-2" ])
                   | _ ->
                     ignore
                       (Plib.batch p
                          [ Plib.B_get k;
                            Plib.B_set
                              { b_key = k; b_data = "y"; b_flags = 0;
                                b_exptime = 0 };
                            Plib.B_delete "k-9" ])
                 done)))
      done;
      Vm.run vm;
      Span.traces ())

let test_vm_well_formedness_property () =
  List.iter
    (fun seed ->
      let trs = run_vm_workload ~seed ~threads:3 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d produced traces" seed)
        true (trs <> []);
      List.iter
        (fun tr ->
          ok_or_fail tr;
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: no aborted trace without a crash" seed)
            false tr.Span.t_aborted;
          Alcotest.(check int)
            (Printf.sprintf "seed %d trace #%d: self times sum to e2e" seed
               tr.Span.trace_id)
            (Span.duration tr) (sum_self tr))
        trs;
      (* crossings appear, and by construction never below a store span
         (well_formed checked it); batches fan out exec children *)
      Alcotest.(check bool) "some trace crosses the boundary" true
        (List.exists
           (fun tr ->
             List.exists (fun s -> s.Span.phase = "crossing") tr.Span.spans)
           trs);
      Alcotest.(check bool) "some batch fans out exec children" true
        (List.exists
           (fun tr ->
             List.length
               (List.filter (fun s -> s.Span.phase = "exec") tr.Span.spans)
             >= 2)
           trs))
    [ 1; 42; 1234; 9001 ]

let test_vm_determinism () =
  let render trs = String.concat "" (List.map Span.render_tree trs) in
  let a = render (run_vm_workload ~seed:77 ~threads:3 ()) in
  let b = render (run_vm_workload ~seed:77 ~threads:3 ()) in
  Alcotest.(check string) "same seed, same trees" a b

let test_vm_contention_profile () =
  let _ = run_vm_workload ~seed:5 ~threads:4 () in
  let tracked, acqs, wait_total = Contention.totals () in
  Alcotest.(check bool) "stripes tracked" true (tracked > 0);
  Alcotest.(check bool) "acquisitions recorded" true (acqs > 0);
  let report = Contention.report ~k:4 () in
  Alcotest.(check bool) "top-K bounded" true (List.length report <= 4);
  let sorted_desc =
    let rec go = function
      | a :: (b :: _ as tl) ->
        a.Contention.c_wait_total_ns >= b.Contention.c_wait_total_ns && go tl
      | _ -> true
    in
    go report
  in
  Alcotest.(check bool) "sorted by wait, descending" true sorted_desc;
  List.iter
    (fun s ->
      Alcotest.(check bool) "wait total bounded by global total" true
        (s.Contention.c_wait_total_ns <= wait_total))
    report;
  (* the kv surface parses *)
  let kvs = Contention.kvs ~k:4 () in
  Alcotest.(check (option string))
    "acquisitions row" (Some (string_of_int acqs))
    (List.assoc_opt "contention:acquisitions" kvs);
  Contention.reset ();
  let tracked', _, _ = Contention.totals () in
  Alcotest.(check int) "reset clears" 0 tracked'

(* ---- Aborted flush at injected kill sites ----------------------------- *)

(* One run of a tiny victim workload with the crash point at [at];
   returns (crashed, completed traces). *)
let run_crash ~at () =
  fresh ();
  incr fresh_path;
  let path = Printf.sprintf "/shm/span-crash-%d" !fresh_path in
  let owner = Process.make ~uid:1000 "bk-span" in
  let p = Plib.create ~store_cfg:cfg ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Pkru.reset_thread ())
    (fun () ->
      let vm = Vm.create ~sched_seed:4321 () in
      let victim_proc = Process.make ~uid:2000 "victim-proc" in
      Vm.set_crash_point vm
        ~filter:(fun n -> n = "victim")
        ~at
        ~on_crash:(fun _ now -> Process.kill ~now_ns:now victim_proc)
        ();
      ignore
        (Vm.spawn vm ~name:"victim" (fun () ->
           Process.with_process victim_proc (fun () ->
             try
               for i = 0 to 7 do
                 ignore (Plib.set p (Printf.sprintf "c-%d" i) "v")
               done
             with Process.Process_killed _ -> ())));
      Vm.run vm;
      (Vm.crashed vm <> [], (Vm.sync_points_seen vm, Span.traces ())))

let test_aborted_flush_on_crash () =
  let _, (n, _) = run_crash ~at:max_int () in
  Alcotest.(check bool) "workload has kill sites" true (n > 4);
  let aborted_seen = ref 0 in
  (* Sweep a handful of evenly spaced sites: every run's traces must
     stay well-formed, and kills that land mid-trace flush it aborted. *)
  for i = 0 to 7 do
    let at = i * n / 8 in
    let crashed, (_, trs) = run_crash ~at () in
    Alcotest.(check bool)
      (Printf.sprintf "site %d fired" at)
      true crashed;
    List.iter
      (fun tr ->
        ok_or_fail tr;
        if tr.Span.t_aborted then begin
          incr aborted_seen;
          Alcotest.(check bool)
            (Printf.sprintf "site %d: aborted trace has an open-span flag" at)
            true
            (List.exists (fun s -> s.Span.s_aborted) tr.Span.spans)
        end)
      trs
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some kill landed mid-trace (%d aborted flushes)"
       !aborted_seen)
    true (!aborted_seen > 0)

let () =
  Alcotest.run "span"
    [ ( "tree",
        [ Alcotest.test_case "shape and self times" `Quick test_tree_shape;
          Alcotest.test_case "nested ingress degrades" `Quick
            test_nested_ingress_degrades;
          Alcotest.test_case "head sampling" `Quick test_sampling;
          Alcotest.test_case "slow-op log" `Quick test_slow_log;
          Alcotest.test_case "drop semantics" `Quick test_drop_semantics ] );
      ( "attribution",
        [ Alcotest.test_case "phases sum exactly to e2e" `Quick
            test_attribution_sums_to_e2e ] );
      ( "vm",
        [ Alcotest.test_case "well-formed under seeded schedules" `Quick
            test_vm_well_formedness_property;
          Alcotest.test_case "deterministic trees" `Quick test_vm_determinism;
          Alcotest.test_case "stripe-contention profile" `Quick
            test_vm_contention_profile ] );
      ( "crash",
        [ Alcotest.test_case "aborted flush at kill sites" `Quick
            test_aborted_flush_on_crash ] ) ]
