(** Wire protocols: ASCII and binary codecs, including error paths and
    property-based roundtrips. *)

open Mc_protocol.Types
module Ascii = Mc_protocol.Ascii
module Binary = Mc_protocol.Binary

let sp ?(flags = 0) ?(exptime = 0) ?(noreply = false) key data =
  { key; flags; exptime; data; noreply }

let ascii_roundtrip cmd =
  let wire = Ascii.encode_command cmd in
  let parsed, consumed = Ascii.parse_command wire in
  Alcotest.(check int) "whole request consumed" (String.length wire) consumed;
  parsed

let test_ascii_get_forms () =
  (match ascii_roundtrip (Get [ "a"; "bb" ]) with
   | Get [ "a"; "bb" ] -> ()
   | _ -> Alcotest.fail "get multi");
  match ascii_roundtrip (Gets [ "k" ]) with
  | Gets [ "k" ] -> ()
  | _ -> Alcotest.fail "gets"

let test_ascii_storage_forms () =
  (match ascii_roundtrip (Set (sp ~flags:7 ~exptime:60 "k" "v\r\nwith crlf")) with
   | Set p ->
     Alcotest.(check string) "data intact" "v\r\nwith crlf" p.data;
     Alcotest.(check int) "flags" 7 p.flags;
     Alcotest.(check int) "exptime" 60 p.exptime
   | _ -> Alcotest.fail "set");
  (match ascii_roundtrip (Cas (sp "k" "v", 99L)) with
   | Cas (_, 99L) -> ()
   | _ -> Alcotest.fail "cas");
  (match ascii_roundtrip (Add (sp ~noreply:true "k" "v")) with
   | Add p -> Alcotest.(check bool) "noreply" true p.noreply
   | _ -> Alcotest.fail "add");
  match ascii_roundtrip (Append (sp "k" "")) with
  | Append p -> Alcotest.(check string) "empty data ok" "" p.data
  | _ -> Alcotest.fail "append"

let test_ascii_other_commands () =
  List.iter
    (fun cmd ->
      let got = ascii_roundtrip cmd in
      Alcotest.(check string) "same command" (command_name cmd)
        (command_name got))
    [ Delete ("k", false); Delete ("k", true); Incr ("k", 5L, false);
      Decr ("k", 3L, true); Touch ("k", 100, false); Stats None; Stats (Some "items"); Version;
      Flush_all; Quit ]

let test_ascii_parse_errors () =
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | _ -> Alcotest.fail ("should not parse: " ^ String.escaped wire)
      | exception Parse_error _ -> ())
    [ "bogus\r\n"; "get\r\n"; "set k\r\n"; "set k a b 3\r\nabc\r\n";
      "set k 0 0 2\r\nabXY" (* wrong terminator *);
      "incr k\r\n"; "set k 0 0 2 garbage\r\nab\r\n" ];
  (* Invalid keys are not parse errors: the request frames, the whole
     thing (data block included) is consumed so a pipelined batch
     stays in sync, and the command surfaces as [Invalid] — which the
     executor answers with a uniform CLIENT_ERROR. *)
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | Invalid m, used ->
        Alcotest.(check string) "uniform message" bad_key_error m;
        Alcotest.(check int) "whole request consumed" (String.length wire)
          used
      | _ -> Alcotest.fail ("should frame as Invalid: " ^ String.escaped wire))
    [ "get " ^ String.make 300 'k' ^ "\r\n" (* key too long *);
      "get bad\x01key\r\n" (* control byte *);
      "gets ok bad\x01key\r\n" (* one bad key poisons the multi-get *);
      "set " ^ String.make 251 'k' ^ " 0 0 2\r\nab\r\n";
      "delete bad\x7fkey\r\n"; "incr bad\x02key 1\r\n";
      "touch " ^ String.make 300 't' ^ " 60\r\n" ]

let test_ascii_short_reads_want_more () =
  (* prefixes of valid requests are not errors: a stream server keeps
     reading *)
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | _ -> Alcotest.fail ("should be incomplete: " ^ String.escaped wire)
      | exception Need_more_data -> ())
    [ ""; "ge"; "get k"; "set k 0 0 5\r\n"; "set k 0 0 5\r\nab" ];
  List.iter
    (fun wire ->
      match Binary.parse_command wire with
      | _ -> Alcotest.fail "should be incomplete"
      | exception Need_more_data -> ())
    [ ""; "\x80"; String.sub (Binary.encode_command (Get [ "k" ])) 0 20 ]

let test_ascii_pipelined_requests () =
  let wire = Ascii.encode_command (Get [ "a" ]) ^ Ascii.encode_command Quit in
  let cmd1, used = Ascii.parse_command wire in
  let rest = String.sub wire used (String.length wire - used) in
  let cmd2, _ = Ascii.parse_command rest in
  Alcotest.(check string) "first" "get" (command_name cmd1);
  Alcotest.(check string) "second" "quit" (command_name cmd2)

let test_ascii_responses () =
  let values =
    Values
      { with_cas = true;
        vals =
          [ { v_key = "k1"; v_flags = 3; v_cas = 42L; v_data = "da\r\nta" };
            { v_key = "k2"; v_flags = 0; v_cas = 7L; v_data = "" } ] }
  in
  (match Ascii.parse_response (Ascii.encode_response values) with
   | Values { vals = [ v1; v2 ]; with_cas } ->
     Alcotest.(check string) "payload with crlf survives" "da\r\nta" v1.v_data;
     Alcotest.(check string) "second key" "k2" v2.v_key;
     Alcotest.(check int64) "cas" 42L v1.v_cas;
     Alcotest.(check bool) "gets form detected" true with_cas
   | _ -> Alcotest.fail "values");
  List.iter
    (fun r ->
      Alcotest.(check bool) "simple response roundtrip" true
        (Ascii.parse_response (Ascii.encode_response r) = r))
    [ Stored; Not_stored; Exists; Not_found; Deleted; Touched; Ok; Error;
      Number (-1L) (* max u64 *); Values { with_cas = false; vals = [] };
      Version_reply "1.6"; Client_error "bad"; Server_error "oom";
      Stats_reply [ ("a", "1"); ("b", "2") ] ]

(* A plain get's VALUE line must not leak the CAS unique; a gets reply
   must carry it. *)
let test_ascii_get_vs_gets_rendering () =
  let v = { v_key = "k"; v_flags = 2; v_cas = 77L; v_data = "vv" } in
  let plain = Ascii.encode_response (Values { with_cas = false; vals = [ v ] }) in
  let gets = Ascii.encode_response (Values { with_cas = true; vals = [ v ] }) in
  Alcotest.(check string) "get form: 4 tokens, no cas"
    "VALUE k 2 2\r\nvv\r\nEND\r\n" plain;
  Alcotest.(check string) "gets form: 5 tokens with cas"
    "VALUE k 2 2 77\r\nvv\r\nEND\r\n" gets;
  (match Ascii.parse_response plain with
   | Values { with_cas = false; vals = [ p ] } ->
     Alcotest.(check int64) "no cas on the wire parses as 0" 0L p.v_cas
   | _ -> Alcotest.fail "plain get reply");
  match Ascii.parse_response gets with
  | Values { with_cas = true; vals = [ p ] } ->
    Alcotest.(check int64) "cas preserved" 77L p.v_cas
  | _ -> Alcotest.fail "gets reply"

let binary_roundtrip cmd =
  let wire = Binary.encode_command cmd in
  let parsed, consumed = Binary.parse_command wire in
  Alcotest.(check int) "consumed" (String.length wire) consumed;
  parsed

let test_binary_commands () =
  (match binary_roundtrip (Get [ "key" ]) with
   | Get [ "key" ] -> ()
   | _ -> Alcotest.fail "get");
  (match binary_roundtrip (Set (sp ~flags:9 ~exptime:33 "k" "binary\x00data")) with
   | Set p ->
     Alcotest.(check string) "data" "binary\x00data" p.data;
     Alcotest.(check int) "flags" 9 p.flags;
     Alcotest.(check int) "exptime" 33 p.exptime
   | _ -> Alcotest.fail "set");
  (match binary_roundtrip (Cas (sp "k" "v", 123456789L)) with
   | Cas (_, 123456789L) -> ()
   | _ -> Alcotest.fail "cas via set+cas field");
  (match binary_roundtrip (Incr ("n", 17L, false)) with
   | Incr ("n", 17L, _) -> ()
   | _ -> Alcotest.fail "incr");
  match binary_roundtrip (Delete ("k", false)) with
  | Delete ("k", _) -> ()
  | _ -> Alcotest.fail "delete"

let test_binary_multiget_rejected () =
  (match Binary.encode_command (Get [ "a"; "b" ]) with
   | _ -> Alcotest.fail "expected rejection"
   | exception Invalid_argument _ -> ())

let test_binary_responses () =
  let cmd = Get [ "k" ] in
  let hit =
    Values
      { with_cas = true;
        vals = [ { v_key = "k"; v_flags = 5; v_cas = 9L; v_data = "vv" } ] }
  in
  (match
     Binary.parse_response ~for_cmd:cmd
       (Binary.encode_response ~for_op:Binary.Op.get hit)
   with
  | Values { vals = [ v ]; _ } ->
    Alcotest.(check string) "data" "vv" v.v_data;
    Alcotest.(check int) "flags" 5 v.v_flags;
    Alcotest.(check int64) "cas" 9L v.v_cas
  | _ -> Alcotest.fail "hit");
  (match
     Binary.parse_response ~for_cmd:cmd
       (Binary.encode_response ~for_op:Binary.Op.get
          (Values { with_cas = true; vals = [] }))
   with
  | Values { vals = []; _ } -> ()
  | _ -> Alcotest.fail "miss");
  (match
     Binary.parse_response ~for_cmd:(Incr ("k", 1L, false))
       (Binary.encode_response ~for_op:Binary.Op.increment (Number 41L))
   with
  | Number 41L -> ()
  | _ -> Alcotest.fail "number");
  match
    Binary.parse_response ~for_cmd:(Stats None)
      (Binary.encode_response ~for_op:Binary.Op.stat
         (Stats_reply [ ("x", "1"); ("y", "2") ]))
  with
  | Stats_reply [ ("x", "1"); ("y", "2") ] -> ()
  | _ -> Alcotest.fail "stats"

let test_binary_header_errors () =
  List.iter
    (fun wire ->
      match Binary.parse_command wire with
      | _ -> Alcotest.fail "should not parse"
      | exception Parse_error _ -> ())
    [ String.make 24 '\x00' (* wrong magic *);
      "\x80" ^ String.make 23 '\xff' (* body length insane *) ]

let gen_key =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 32))

let gen_data = QCheck.Gen.(string_size (int_range 0 512))

let qcheck_ascii_set_roundtrip =
  QCheck.Test.make ~name:"ascii set roundtrips arbitrary data" ~count:200
    QCheck.(
      make
        Gen.(
          let* k = gen_key in
          let* d = gen_data in
          let* f = int_range 0 0xFFFF in
          pure (k, d, f)))
    (fun (k, d, f) ->
      match ascii_roundtrip (Set (sp ~flags:f k d)) with
      | Set p -> p.key = k && p.data = d && p.flags = f
      | _ -> false)

let qcheck_binary_set_roundtrip =
  QCheck.Test.make ~name:"binary set roundtrips arbitrary data" ~count:200
    QCheck.(
      make
        Gen.(
          let* k = gen_key in
          let* d = gen_data in
          pure (k, d)))
    (fun (k, d) ->
      match binary_roundtrip (Set (sp k d)) with
      | Set p -> p.key = k && p.data = d
      | _ -> false)

let qcheck_value_response_roundtrip =
  QCheck.Test.make ~name:"ascii VALUE responses roundtrip" ~count:200
    QCheck.(
      make
        Gen.(
          let* k = gen_key in
          let* d = gen_data in
          let* c = int_range 0 1_000_000 in
          pure (k, d, Int64.of_int c)))
    (fun (k, d, c) ->
      let r =
        Values
          { with_cas = true;
            vals = [ { v_key = k; v_flags = 1; v_cas = c; v_data = d } ] }
      in
      Ascii.parse_response (Ascii.encode_response r) = r)

let test_noreply_classification () =
  Alcotest.(check bool) "set noreply" true
    (is_noreply (Set (sp ~noreply:true "k" "v")));
  Alcotest.(check bool) "set reply" false (is_noreply (Set (sp "k" "v")));
  Alcotest.(check bool) "delete noreply" true (is_noreply (Delete ("k", true)));
  Alcotest.(check bool) "incr noreply" true (is_noreply (Incr ("k", 1L, true)));
  Alcotest.(check bool) "get never noreply" false (is_noreply (Get [ "k" ]));
  Alcotest.(check bool) "stats never noreply" false (is_noreply (Stats None))

let test_binary_touch_roundtrip () =
  match binary_roundtrip (Touch ("k", 3600, false)) with
  | Touch ("k", 3600, _) -> ()
  | _ -> Alcotest.fail "touch"

let test_binary_quit_version_flush () =
  List.iter
    (fun cmd ->
      let got = binary_roundtrip cmd in
      Alcotest.(check string) "roundtrip" (command_name cmd) (command_name got))
    [ Quit; Version; Flush_all; Stats None; Stats (Some "slabs") ]

let test_ascii_incr_u64_range () =
  (* the full u64 range must survive the text protocol *)
  match ascii_roundtrip (Incr ("k", -1L (* 2^64-1 *), false)) with
  | Incr ("k", v, _) -> Alcotest.(check int64) "max u64 delta" (-1L) v
  | _ -> Alcotest.fail "incr"

let test_ascii_number_response_u64 () =
  match Ascii.parse_response (Ascii.encode_response (Number (-1L))) with
  | Number v -> Alcotest.(check int64) "max u64 number" (-1L) v
  | _ -> Alcotest.fail "number"

(* Values one past 2^64-1 must be rejected, not wrapped: a wrapped
   delta silently applies a garbage increment, and a wrapped CAS unique
   could spuriously match a live item's unique. 2^64-1 itself is the
   last valid operand on both paths. *)
let test_ascii_u64_overflow_rejected () =
  (* boundary: exactly 2^64-1 parses (as -1L in the int64 carrier) *)
  (match Ascii.parse_command "incr k 18446744073709551615\r\n" with
   | Incr ("k", v, false), _ ->
     Alcotest.(check int64) "2^64-1 delta" (-1L) v
   | _ -> Alcotest.fail "boundary delta should parse");
  (* one digit more: framed, answered, not wrapped *)
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | Invalid m, used ->
        Alcotest.(check string) "memcached's wording"
          "invalid numeric delta argument" m;
        Alcotest.(check int) "whole line consumed" (String.length wire) used
      | _ -> Alcotest.fail ("should frame as Invalid: " ^ String.escaped wire))
    [ "incr k 18446744073709551616\r\n" (* 2^64 *);
      "decr k 99999999999999999999\r\n" (* 20 nines *);
      "incr k 184467440737095516150\r\n" (* valid max * 10 *) ]

let test_ascii_cas_unique_overflow () =
  (* boundary: a 2^64-1 unique survives end-to-end *)
  (match Ascii.parse_command "cas k 0 0 2 18446744073709551615\r\nab\r\n" with
   | Cas ({ key = "k"; data = "ab"; _ }, u), _ ->
     Alcotest.(check int64) "2^64-1 unique" (-1L) u
   | _ -> Alcotest.fail "boundary cas should parse");
  (* an overflowing (or non-numeric) unique frames as Invalid — and the
     parser must still consume the data block the client already sent,
     or every later command in the pipeline parses one request late *)
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | Invalid m, used ->
        Alcotest.(check string) "uniform message" "bad command line format" m;
        Alcotest.(check int) "data block consumed too" (String.length wire)
          used
      | _ -> Alcotest.fail ("should frame as Invalid: " ^ String.escaped wire))
    [ "cas k 0 0 2 18446744073709551616\r\nab\r\n";
      "cas k 0 0 2 99999999999999999999\r\nab\r\n";
      "cas k 0 0 2 notanumber\r\nab\r\n" ];
  (* the pipelined proof: a batch with the bad cas mid-stream stays in
     sync — the follower parses as itself, not as the orphaned data *)
  let wire =
    Ascii.encode_command (Get [ "before" ])
    ^ "cas k 0 0 2 18446744073709551616\r\nab\r\n"
    ^ Ascii.encode_command (Get [ "after" ])
  in
  let cmds, used = Ascii.parse_batch wire in
  Alcotest.(check (list string)) "batch in sync" [ "get"; "invalid"; "get" ]
    (List.map command_name cmds);
  Alcotest.(check int) "all consumed" (String.length wire) used;
  match cmds with
  | [ Get [ "before" ]; Invalid _; Get [ "after" ] ] -> ()
  | _ -> Alcotest.fail "follower desynced by the unconsumed data block"

(* Robustness: arbitrary bytes must never escape as anything but
   Parse_error — a server must survive any garbage a client sends. *)
let qcheck_ascii_fuzz =
  QCheck.Test.make ~name:"ascii parser total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 128))
    (fun garbage ->
      match Ascii.parse_command garbage with
      | _ -> true
      | exception Parse_error _ -> true
      | exception Need_more_data -> true
      | exception _ -> false)

let qcheck_binary_fuzz =
  QCheck.Test.make ~name:"binary parser total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 128))
    (fun garbage ->
      match Binary.parse_command garbage with
      | _ -> true
      | exception Parse_error _ -> true
      | exception Need_more_data -> true
      | exception _ -> false)

(* Bit-flip fuzz: corrupt one byte of a valid frame. *)
let qcheck_binary_bitflip =
  QCheck.Test.make ~name:"binary parser total on corrupted frames" ~count:500
    QCheck.(pair (int_range 0 200) (int_range 0 255))
    (fun (pos, byte) ->
      let wire =
        Binary.encode_command
          (Set (sp ~flags:1 ~exptime:2 "somekey" "some-value-data"))
      in
      let b = Bytes.of_string wire in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match Binary.parse_command (Bytes.to_string b) with
      | _ -> true
      | exception Parse_error _ -> true
      | exception Need_more_data -> true
      | exception _ -> false)

(* ---- seeded conformance sweep --------------------------------------

   A deterministic generator (explicit [Random.State], fixed seeds — a
   red run reproduces byte-for-byte) drives full-command encode→decode
   round trips through both codecs, with keys and values pinned to the
   allocator's size-class boundaries (class size, one under, one over)
   where torn-length bugs live. *)

let boundary_lens =
  List.sort_uniq compare
    (0 :: 1
    :: List.concat_map
         (fun c -> [ c - 1; c; c + 1 ])
         (Array.to_list Ralloc.size_classes))

let key_lens = [ 1; 2; 16; 17; 128; 249; 250 ]

let gen_key_at rs =
  let len = List.nth key_lens (Random.State.int rs (List.length key_lens)) in
  String.init len (fun _ -> Char.chr (97 + Random.State.int rs 26))

let gen_data_at rs =
  let len =
    List.nth boundary_lens (Random.State.int rs (List.length boundary_lens))
  in
  String.init len (fun _ -> Char.chr (Random.State.int rs 256))

let gen_params rs =
  { key = gen_key_at rs;
    flags = Random.State.int rs 0x10000;
    exptime = Random.State.int rs 1_000_000;
    data = gen_data_at rs;
    noreply = Random.State.bool rs }

let gen_command ?(multi_get = true) rs =
  match Random.State.int rs 12 with
  | 0 ->
    let n = if multi_get then 1 + Random.State.int rs 3 else 1 in
    Get (List.init n (fun _ -> gen_key_at rs))
  | 1 -> Gets [ gen_key_at rs ]
  | 2 -> Set (gen_params rs)
  | 3 -> Add (gen_params rs)
  | 4 -> Replace (gen_params rs)
  | 5 -> Append (gen_params rs)
  | 6 -> Prepend (gen_params rs)
  | 7 ->
    Cas (gen_params rs, Int64.of_int (1 + Random.State.int rs 1_000_000_000))
  | 8 -> Delete (gen_key_at rs, Random.State.bool rs)
  | 9 ->
    Incr (gen_key_at rs, Int64.of_int (Random.State.int rs 1_000_000),
          Random.State.bool rs)
  | 10 ->
    Decr (gen_key_at rs, Int64.of_int (Random.State.int rs 1_000_000),
          Random.State.bool rs)
  | _ -> Touch (gen_key_at rs, Random.State.int rs 100_000, Random.State.bool rs)

(* What the binary wire can represent: [gets] is a response-shape
   distinction (the header always carries CAS); concatenation ops have
   no extras field, so flags/exptime don't travel; [Touch] has no quiet
   opcode. Everything else — including noreply, via the quiet
   opcodes — must survive exactly. *)
let binary_normalize = function
  | Gets [ k ] -> Get [ k ]
  | Append p -> Append { p with flags = 0; exptime = 0 }
  | Prepend p -> Prepend { p with flags = 0; exptime = 0 }
  | Touch (k, e, _) -> Touch (k, e, false)
  | c -> c

let describe c =
  Printf.sprintf "%s noreply=%b" (command_name c) (is_noreply c)

let test_ascii_seeded_conformance () =
  let rs = Random.State.make [| 0xC0FFEE |] in
  for i = 0 to 999 do
    let cmd = gen_command rs in
    let got = ascii_roundtrip cmd in
    if got <> cmd then
      Alcotest.fail
        (Printf.sprintf "iteration %d: ascii round trip changed %s into %s" i
           (describe cmd) (describe got))
  done

let test_binary_seeded_conformance () =
  let rs = Random.State.make [| 0xB17E5 |] in
  for i = 0 to 999 do
    let cmd = gen_command ~multi_get:false rs in
    let want = binary_normalize cmd in
    let got = binary_roundtrip cmd in
    if got <> want then
      Alcotest.fail
        (Printf.sprintf "iteration %d: binary round trip changed %s into %s" i
           (describe cmd) (describe got))
  done

(* The asymmetry this PR fixed: binary encoding used to drop [noreply]
   (every parse came back noisy). Each noreply-capable command must now
   pick a quiet opcode and map back. *)
let test_binary_noreply_roundtrip () =
  List.iter
    (fun cmd ->
      let got = binary_roundtrip cmd in
      Alcotest.(check bool)
        ("noreply survives binary: " ^ command_name cmd)
        true (is_noreply got);
      (* and the quiet opcode really differs from the noisy one *)
      let quiet = (Binary.encode_command cmd).[1] in
      let noisy =
        (Binary.encode_command
           (match binary_roundtrip cmd with
            | Set p -> Set { p with noreply = false }
            | Add p -> Add { p with noreply = false }
            | Replace p -> Replace { p with noreply = false }
            | Append p -> Append { p with noreply = false }
            | Prepend p -> Prepend { p with noreply = false }
            | Cas (p, c) -> Cas ({ p with noreply = false }, c)
            | Delete (k, _) -> Delete (k, false)
            | Incr (k, d, _) -> Incr (k, d, false)
            | Decr (k, d, _) -> Decr (k, d, false)
            | c -> c)).[1]
      in
      Alcotest.(check bool)
        ("distinct quiet opcode: " ^ command_name cmd)
        true (quiet <> noisy))
    [ Set (sp ~noreply:true "k" "v");
      Add (sp ~noreply:true "k" "v");
      Replace (sp ~noreply:true "k" "v");
      Append (sp ~noreply:true "k" "v");
      Prepend (sp ~noreply:true "k" "v");
      Cas (sp ~noreply:true "k" "v", 5L);
      Delete ("k", true);
      Incr ("k", 1L, true);
      Decr ("k", 2L, true) ]

let test_key_validation () =
  Alcotest.(check bool) "normal" true (validate_key "ok_key-123");
  Alcotest.(check bool) "empty" false (validate_key "");
  Alcotest.(check bool) "space" false (validate_key "a b");
  Alcotest.(check bool) "control" false (validate_key "a\nb");
  Alcotest.(check bool) "250 max" true (validate_key (String.make 250 'k'));
  Alcotest.(check bool) "251 too long" false (validate_key (String.make 251 'k'))

(* Binary keys are length-framed: any byte goes, only the length bound
   applies — and the codec enforces it by framing the request as
   [Invalid] rather than desyncing the stream. *)
let test_binary_key_validation () =
  Alcotest.(check bool) "space ok in binary" true (validate_key_binary "a b");
  Alcotest.(check bool) "control ok in binary" true
    (validate_key_binary "a\x01b");
  Alcotest.(check bool) "empty" false (validate_key_binary "");
  Alcotest.(check bool) "251 too long" false
    (validate_key_binary (String.make 251 'k'));
  (* a space key really travels *)
  (match binary_roundtrip (Get [ "a b" ]) with
   | Get [ "a b" ] -> ()
   | _ -> Alcotest.fail "space key lost");
  (* an over-long key frames as Invalid, whole frame consumed *)
  let wire = Binary.encode_command (Delete (String.make 251 'k', false)) in
  match Binary.parse_command wire with
  | Invalid m, used ->
    Alcotest.(check string) "uniform message" bad_key_error m;
    Alcotest.(check int) "frame consumed" (String.length wire) used
  | _ -> Alcotest.fail "over-long binary key should frame as Invalid"

(* ---- The batch plane: pipelined parse and coalesced encode ---------- *)

let test_ascii_batch_parse () =
  let wire =
    Ascii.encode_command (Set (sp "k1" "v1"))
    ^ Ascii.encode_command (Get [ "k1"; "k2" ])
    ^ Ascii.encode_command (Delete ("k3", false))
    ^ "get partial" (* incomplete tail stays unconsumed *)
  in
  let cmds, used = Ascii.parse_batch wire in
  Alcotest.(check (list string)) "ops in order" [ "set"; "get"; "delete" ]
    (List.map command_name cmds);
  Alcotest.(check int) "tail left in the buffer"
    (String.length wire - String.length "get partial")
    used;
  (* an invalid key mid-batch yields Invalid in place, batch in sync *)
  let wire2 =
    Ascii.encode_command (Get [ "ok1" ])
    ^ "get " ^ String.make 300 'x' ^ "\r\n"
    ^ Ascii.encode_command (Get [ "ok2" ])
  in
  let cmds2, used2 = Ascii.parse_batch wire2 in
  Alcotest.(check (list string)) "invalid framed in place"
    [ "get"; "invalid"; "get" ]
    (List.map command_name cmds2);
  Alcotest.(check int) "all consumed" (String.length wire2) used2;
  (* garbage mid-batch stops the batch at the boundary *)
  let wire3 = Ascii.encode_command (Get [ "ok" ]) ^ "bogus junk\r\n" in
  let cmds3, used3 = Ascii.parse_batch wire3 in
  Alcotest.(check int) "one op before the garbage" 1 (List.length cmds3);
  Alcotest.(check int) "stopped at the boundary"
    (String.length (Ascii.encode_command (Get [ "ok" ])))
    used3;
  (* max_ops bounds a batch *)
  let many = String.concat "" (List.init 10 (fun _ -> "get k\r\n")) in
  let cmds4, used4 = Ascii.parse_batch ~max_ops:4 many in
  Alcotest.(check int) "max_ops honored" 4 (List.length cmds4);
  Alcotest.(check int) "consumed exactly 4" (4 * String.length "get k\r\n")
    used4

let test_binary_batch_parse () =
  (* the binary mget idiom: a quiet-get run closed by a noop *)
  let wire =
    Binary.encode_command
      (Getx { g_key = "a"; g_quiet = true; g_withkey = true })
    ^ Binary.encode_command
        (Getx { g_key = "b"; g_quiet = true; g_withkey = true })
    ^ Binary.encode_command Noop
  in
  let cmds, used = Binary.parse_batch wire in
  Alcotest.(check int) "whole run consumed" (String.length wire) used;
  match cmds with
  | [ Getx { g_key = "a"; g_quiet = true; _ };
      Getx { g_key = "b"; g_quiet = true; _ }; Noop ] ->
    ()
  | _ -> Alcotest.fail "quiet-run parse"

let test_batch_encode_suppression () =
  (* one output buffer; quiet misses and noreply acks dropped, errors
     always answered *)
  let hit k =
    Values
      { with_cas = true;
        vals = [ { v_key = k; v_flags = 0; v_cas = 1L; v_data = "v" } ] }
  in
  let miss = Values { with_cas = true; vals = [] } in
  let quiet k = Getx { g_key = k; g_quiet = true; g_withkey = true } in
  let out =
    Binary.encode_batch
      [ (quiet "a", hit "a"); (quiet "b", miss);
        (Set (sp ~noreply:true "k" "v"), Stored);
        (Invalid bad_key_error, Client_error bad_key_error); (Noop, Ok) ]
  in
  (* the two suppressed replies (quiet miss, noreply ack) are absent:
     hit + error + noop = 3 frames *)
  let rec count at n =
    if at >= String.length out then n
    else
      let _, used = Binary.parse_response_at ~for_cmd:Noop out ~at in
      count (at + used) (n + 1)
  in
  Alcotest.(check int) "three frames" 3 (count 0 0);
  (* ascii side: noreply storage suppressed, errors kept *)
  let aout =
    Ascii.encode_batch
      [ (Set (sp ~noreply:true "k" "v"), Stored);
        (Get [ "k" ], hit "k");
        (Invalid bad_key_error, Client_error bad_key_error) ]
  in
  Alcotest.(check bool) "no STORED line" false
    (String.length aout >= 8 && String.sub aout 0 8 = "STORED\r\n");
  Alcotest.(check bool) "CLIENT_ERROR present" true
    (let rec has at =
       at + 12 <= String.length aout
       && (String.sub aout at 12 = "CLIENT_ERROR" || has (at + 1))
     in
     has 0)

let test_ascii_response_at_positions () =
  let r1 = Ascii.encode_response Stored in
  let r2 =
    Ascii.encode_response
      (Values
         { with_cas = false;
           vals = [ { v_key = "k"; v_flags = 0; v_cas = 0L; v_data = "END" } ] })
  in
  let r3 = Ascii.encode_response (Number 7L) in
  let buf = r1 ^ r2 ^ r3 in
  let a, u1 = Ascii.parse_response_at buf ~at:0 in
  let b, u2 = Ascii.parse_response_at buf ~at:u1 in
  let c, u3 = Ascii.parse_response_at buf ~at:(u1 + u2) in
  Alcotest.(check bool) "stored" true (a = Stored);
  (match b with
   | Values { vals = [ v ]; _ } ->
     Alcotest.(check string) "data containing END survives" "END" v.v_data
   | _ -> Alcotest.fail "values");
  Alcotest.(check bool) "number" true (c = Number 7L);
  Alcotest.(check int) "exact spans" (String.length buf) (u1 + u2 + u3)

(* ---- Hostile length fields (red-team regressions) --------------------- *)

(* Non-canonical data-chunk lengths: negative (the pre-hardening
   connection killer), hex, overflowing, non-digit suffix. Hardened,
   every one is a Parse_error raised while reading the header line,
   before any data block is touched. *)
let test_ascii_hostile_lengths () =
  List.iter
    (fun wire ->
      match Ascii.parse_command wire with
      | _ ->
        Alcotest.fail ("hardened parser accepted: " ^ String.escaped wire)
      | exception Parse_error _ -> ())
    [ "set k 0 0 -2\r\nxx\r\n"; "set k 0 0 -10\r\nxx\r\n";
      "set k 0 0 0x10\r\nxx\r\n"; "set k 0 0 007x\r\nxx\r\n";
      "set k 0 0 99999999999\r\nxx\r\n"; "set k 0 0 4294967296\r\nxx\r\n" ];
  (* over-limit but syntactically fine: refused with the classic
     memcached message *)
  match Ascii.parse_command "set k 0 0 1048577\r\n" with
  | _ -> Alcotest.fail "over-limit length accepted"
  | exception Parse_error m ->
    Alcotest.(check string) "classic refusal" "object too large for cache" m

(* The red half: with the hardening toggle reverted, the negative
   length reaches String.sub and detonates — the crash the fuzzer
   originally surfaced, kept as proof the fix is load-bearing. *)
let test_ascii_negative_len_unhardened_crashes () =
  parser_hardening := false;
  Fun.protect ~finally:(fun () -> parser_hardening := true) @@ fun () ->
  match Ascii.parse_command "set k 0 0 -2\r\nxx\r\n" with
  | _ -> Alcotest.fail "expected the unhardened parser to crash"
  | exception Invalid_argument _ -> ()

(* A binary value over the item-size limit frames as [Invalid] with the
   whole frame consumed, so a pipelined batch stays in sync — no
   desync, no reply stolen from the next command. *)
let test_binary_oversize_value_framed () =
  let big = String.make (max_data_bytes + 1) 'v' in
  let frame = Binary.encode_command (Set (sp "k" big)) in
  (match Binary.parse_command frame with
   | Invalid m, used ->
     Alcotest.(check string) "classic refusal" "object too large for cache" m;
     Alcotest.(check int) "whole frame consumed" (String.length frame) used
   | _ -> Alcotest.fail "oversize value must frame as Invalid");
  let wire = frame ^ Binary.encode_command Noop in
  (match Binary.parse_batch wire with
   | [ Invalid _; Noop ], used ->
     Alcotest.(check int) "batch stays in sync" (String.length wire) used
   | _ -> Alcotest.fail "batch desynced after the oversize frame");
  (* unhardened, the bound simply does not exist *)
  parser_hardening := false;
  Fun.protect ~finally:(fun () -> parser_hardening := true) @@ fun () ->
  match Binary.parse_command frame with
  | Set p, _ ->
    Alcotest.(check int) "unhardened swallows the oversize value"
      (max_data_bytes + 1) (String.length p.data)
  | _ -> Alcotest.fail "unhardened parse should yield the Set"

let () =
  Alcotest.run "protocol"
    [ ( "ascii",
        [ Alcotest.test_case "get forms" `Quick test_ascii_get_forms;
          Alcotest.test_case "storage forms" `Quick test_ascii_storage_forms;
          Alcotest.test_case "other commands" `Quick test_ascii_other_commands;
          Alcotest.test_case "parse errors" `Quick test_ascii_parse_errors;
          Alcotest.test_case "pipelining" `Quick test_ascii_pipelined_requests;
          Alcotest.test_case "responses" `Quick test_ascii_responses;
          Alcotest.test_case "get vs gets rendering" `Quick
            test_ascii_get_vs_gets_rendering;
          QCheck_alcotest.to_alcotest qcheck_ascii_set_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_value_response_roundtrip ] );
      ( "binary",
        [ Alcotest.test_case "commands" `Quick test_binary_commands;
          Alcotest.test_case "multiget rejected" `Quick
            test_binary_multiget_rejected;
          Alcotest.test_case "responses" `Quick test_binary_responses;
          Alcotest.test_case "header errors" `Quick test_binary_header_errors;
          QCheck_alcotest.to_alcotest qcheck_binary_set_roundtrip;
          Alcotest.test_case "noreply via quiet opcodes" `Quick
            test_binary_noreply_roundtrip ] );
      ( "seeded conformance",
        [ Alcotest.test_case "ascii full-command sweep" `Quick
            test_ascii_seeded_conformance;
          Alcotest.test_case "binary full-command sweep" `Quick
            test_binary_seeded_conformance ] );
      ( "validation",
        [ Alcotest.test_case "keys" `Quick test_key_validation;
          Alcotest.test_case "binary keys" `Quick test_binary_key_validation;
          Alcotest.test_case "short reads want more" `Quick
            test_ascii_short_reads_want_more;
          Alcotest.test_case "noreply classification" `Quick
            test_noreply_classification ] );
      ( "batch plane",
        [ Alcotest.test_case "ascii batch parse" `Quick test_ascii_batch_parse;
          Alcotest.test_case "binary quiet-run parse" `Quick
            test_binary_batch_parse;
          Alcotest.test_case "batch encode suppression" `Quick
            test_batch_encode_suppression;
          Alcotest.test_case "positional responses" `Quick
            test_ascii_response_at_positions ] );
      ( "hostile lengths",
        [ Alcotest.test_case "ascii hostile length tokens" `Quick
            test_ascii_hostile_lengths;
          Alcotest.test_case "ascii negative length crashes unhardened"
            `Quick test_ascii_negative_len_unhardened_crashes;
          Alcotest.test_case "binary oversize value framed in sync" `Quick
            test_binary_oversize_value_framed ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest qcheck_ascii_fuzz;
          QCheck_alcotest.to_alcotest qcheck_binary_fuzz;
          QCheck_alcotest.to_alcotest qcheck_binary_bitflip ] );
      ( "more roundtrips",
        [ Alcotest.test_case "binary touch" `Quick test_binary_touch_roundtrip;
          Alcotest.test_case "binary admin commands" `Quick
            test_binary_quit_version_flush;
          Alcotest.test_case "ascii u64 incr" `Quick test_ascii_incr_u64_range;
          Alcotest.test_case "ascii u64 number" `Quick
            test_ascii_number_response_u64;
          Alcotest.test_case "u64 overflow rejected" `Quick
            test_ascii_u64_overflow_rejected;
          Alcotest.test_case "cas unique overflow framed" `Quick
            test_ascii_cas_unique_overflow ] ) ]
