(** An interactive shell over the protected-library memcached, with
    durable heap images: state survives across invocations through the
    flush/restart path (§3.2).

    Usage:
      dune exec bin/kv_shell.exe -- --image /tmp/kv.img
      kv> set greeting hello
      kv> get greeting
      kv> quit                        # flushes to the image
      dune exec bin/kv_shell.exe -- --image /tmp/kv.img
      kv> get greeting                # still there *)

module Client = Core.Client.Make (Platform.Real_sync)
module Plib = Client.Plib

let usage () =
  print_string
    "commands:\n\
    \  get <key>              set <key> <value>      add <key> <value>\n\
    \  mget <key> [key ...]   (one crossing for the whole key list)\n\
    \  replace <key> <value>  append <key> <suffix>  prepend <key> <prefix>\n\
    \  del <key>              incr <key> [n]         decr <key> [n]\n\
    \  touch <key> <secs>     stats [arg]            flush_all\n\
    \  resize                 maintain               help\n\
    \  keys                   reap\n\
    \  telemetry              trace [n]              trace <subsys> [sev]\n\
    \  trace-tree [n]         (last n sampled span trees, default 3)\n\
    \  doctor                 (post-mortem forensic report)\n\
    \  heap-map               (one character per superblock)\n\
    \  quit (flushes to the image when one is configured)\n\
    \  stats args: items | slabs | latency | phases | contention | reset\n\
    \              settings | heap | forensics\n"

let shell plib image =
  let open Mc_core.Store in
  let quit = ref false in
  while not !quit do
    print_string "kv> ";
    match In_channel.input_line stdin with
    | None -> quit := true
    | Some line ->
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      (try
         match words with
         | [] -> ()
         | [ "help" ] -> usage ()
         | [ "quit" ] | [ "exit" ] -> quit := true
         | [ "get"; k ] ->
           (match Plib.get plib k with
            | Some r ->
              Printf.printf "VALUE %s flags=%d cas=%Ld\n%s\n" k r.flags r.cas
                r.value
            | None -> print_endline "NOT_FOUND")
         | "mget" :: (_ :: _ as keys) ->
           (* the whole key list rides one trampoline crossing *)
           let hits = Plib.mget plib keys in
           List.iter
             (fun (k, r) ->
               Printf.printf "VALUE %s flags=%d cas=%Ld\n%s\n" k r.flags r.cas
                 r.value)
             hits;
           Printf.printf "END (%d of %d hit)\n" (List.length hits)
             (List.length keys)
         | "set" :: k :: rest ->
           let v = String.concat " " rest in
           print_endline
             (match Plib.set plib k v with
              | Stored -> "STORED"
              | No_memory -> "SERVER_ERROR out of memory"
              | _ -> "NOT_STORED")
         | "add" :: k :: rest ->
           print_endline
             (match Plib.add plib k (String.concat " " rest) with
              | Stored -> "STORED"
              | _ -> "NOT_STORED")
         | "replace" :: k :: rest ->
           print_endline
             (match Plib.replace plib k (String.concat " " rest) with
              | Stored -> "STORED"
              | _ -> "NOT_STORED")
         | "append" :: k :: rest ->
           print_endline
             (match Plib.append plib k (String.concat " " rest) with
              | Stored -> "STORED"
              | _ -> "NOT_STORED")
         | "prepend" :: k :: rest ->
           print_endline
             (match Plib.prepend plib k (String.concat " " rest) with
              | Stored -> "STORED"
              | _ -> "NOT_STORED")
         | [ "del"; k ] ->
           print_endline (if Plib.delete plib k then "DELETED" else "NOT_FOUND")
         | [ "incr"; k ] | [ "incr"; k; "1" ] -> (
             match Plib.incr plib k 1L with
             | Counter v -> Printf.printf "%Lu\n" v
             | Counter_not_found -> print_endline "NOT_FOUND"
             | Non_numeric -> print_endline "CLIENT_ERROR non-numeric")
         | [ "incr"; k; n ] -> (
             match Plib.incr plib k (Int64.of_string n) with
             | Counter v -> Printf.printf "%Lu\n" v
             | Counter_not_found -> print_endline "NOT_FOUND"
             | Non_numeric -> print_endline "CLIENT_ERROR non-numeric")
         | [ "decr"; k; n ] -> (
             match Plib.decr plib k (Int64.of_string n) with
             | Counter v -> Printf.printf "%Lu\n" v
             | Counter_not_found -> print_endline "NOT_FOUND"
             | Non_numeric -> print_endline "CLIENT_ERROR non-numeric")
         | [ "touch"; k; secs ] ->
           print_endline
             (if Plib.touch plib k (int_of_string secs) then "TOUCHED"
              else "NOT_FOUND")
         | [ "keys" ] ->
           let n =
             Plib.fold_keys plib
               (fun n key ~nbytes ~exptime ->
                 Printf.printf "%s (%d bytes%s)\n" key nbytes
                   (if exptime = 0 then ""
                    else Printf.sprintf ", expires %d" exptime);
                 n + 1)
               0
           in
           Printf.printf "%d key(s)\n" n
         | [ "reap" ] ->
           Printf.printf "reaped %d expired item(s)\n" (Plib.reap_expired plib)
         | [ "stats" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Plib.stats plib @ Telemetry.Counters.boundary_kvs ())
         | [ "stats"; "items" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Plib.stats_items plib)
         | [ "stats"; "slabs" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Plib.stats_slabs plib)
         | [ "stats"; "latency" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Telemetry.Timers.kvs ())
         | [ "stats"; "phases" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Telemetry.Span.phase_kvs ())
         | [ "stats"; "contention" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Telemetry.Contention.kvs ()
             @ Telemetry.Counters.optimistic_kvs ())
         | [ "stats"; "settings" ] ->
           let cfg = Plib.Store.config (Plib.store plib) in
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             ([ ("optimistic_reads", if cfg.optimistic_reads then "1" else "0");
                ("lock_count", string_of_int cfg.lock_count);
                ("hashpower", string_of_int cfg.hashpower);
                ("lru_count", string_of_int cfg.lru_count);
                ("evict_batch", string_of_int cfg.evict_batch);
                ("trace_level",
                 Telemetry.Trace.severity_name (Telemetry.Trace.get_level ()));
                ("trace_sample_every",
                 string_of_int (Telemetry.Span.sampling ()));
                ("slow_threshold_ns",
                 string_of_int (Telemetry.Span.slow_threshold_ns ()));
                ("telemetry", if Telemetry.Control.on () then "1" else "0") ]
              @ Telemetry.Flight.settings_kvs ()
              @ !Mc_server.Executor.settings_stats_hook ())
         | [ "stats"; "heap" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (!Mc_server.Executor.heap_stats_hook ())
         | [ "stats"; "forensics" ] ->
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Telemetry.Forensics.kvs (Plib.forensics plib))
         | [ "doctor" ] -> print_string (Plib.doctor plib)
         | [ "heap-map" ] -> print_string (Plib.heap_report plib)
         | [ "stats"; "reset" ] ->
           Plib.stats_reset plib;
           Telemetry.Counters.reset ();
           Telemetry.Timers.reset ();
           Telemetry.Span.reset_phases ();
           Telemetry.Contention.reset ();
           print_endline "RESET"
         | [ "telemetry" ] ->
           (* everything the subsystem holds, store-op mirrors included *)
           List.iter
             (fun (k, v) -> Printf.printf "STAT %s %s\n" k v)
             (Telemetry.Counters.all_kvs () @ Telemetry.Timers.kvs ())
         | "trace" :: args ->
           (* trace [n] | trace <subsys> [severity] *)
           let n, subsys, min_sev =
             match args with
             | [] -> (None, None, None)
             | [ a ] ->
               (match int_of_string_opt a with
                | Some n -> (Some n, None, None)
                | None -> (None, Some a, None))
             | [ s; sev ] ->
               (match Telemetry.Trace.severity_of_string sev with
                | Some _ as ms -> (None, Some s, ms)
                | None -> failwith ("unknown severity " ^ sev))
             | _ -> failwith "usage: trace [n] | trace <subsys> [severity]"
           in
           let evs = Telemetry.Trace.dump ?n ?subsys ?min_sev () in
           List.iter (fun e -> print_endline (Telemetry.Trace.render e)) evs;
           Printf.printf "%d event(s) shown, %d emitted in total\n"
             (List.length evs)
             (Telemetry.Trace.emitted ());
           if evs = [] && subsys <> None then
             Printf.printf "subsystems in the ring: %s\n"
               (String.concat " " (Telemetry.Trace.subsystems ()))
         | [ "trace-tree" ] | [ "trace-tree"; _ ] ->
           let n =
             match words with [ _; n ] -> int_of_string n | _ -> 3
           in
           (match Telemetry.Span.traces ~n () with
            | [] -> print_endline "no sampled traces (is TELEMETRY on?)"
            | trs ->
              List.iter (fun tr -> print_string (Telemetry.Span.render_tree tr))
                trs)
         | [ "flush_all" ] ->
           Plib.flush_all plib;
           print_endline "OK"
         | [ "resize" ] ->
           print_endline (if Plib.resize plib then "RESIZED" else "FAILED")
         | [ "maintain" ] ->
           Plib.maintain plib;
           print_endline "OK"
         | w :: _ -> Printf.printf "ERROR unknown command %S (try help)\n" w
       with e -> Printf.printf "ERROR %s\n" (Printexc.to_string e))
  done;
  match image with
  | Some path ->
    Plib.shutdown plib ~disk_path:path;
    Printf.printf "flushed heap to %s\n" path
  | None -> ()

let run image size_mb =
  (* Real wall clock for span/trace stamps: the shell runs on real
     threads, so no Vm ever installs a virtual clock here. *)
  let (_prev : unit -> int) =
    Telemetry.Control.install_now Platform.Real_sync.now_ns
  in
  let owner = Simos.Process.make ~uid:1000 "kv-shell-bookkeeper" in
  let plib =
    match image with
    | Some path when Sys.file_exists path ->
      Printf.printf "restoring heap from %s\n" path;
      Plib.restart ~disk_path:path ~path:"/dev/shm/kv-shell" ~owner ()
    | _ ->
      Plib.create ~path:"/dev/shm/kv-shell" ~size:(size_mb lsl 20) ~owner ()
  in
  usage ();
  shell plib image

open Cmdliner

let image =
  Arg.(value & opt (some string) None
       & info [ "image"; "i" ] ~docv:"FILE"
           ~doc:"Heap image: restored on start, flushed on quit.")

let size_mb =
  Arg.(value & opt int 64
       & info [ "size" ] ~docv:"MB" ~doc:"Heap size for a fresh store (MiB).")

let cmd =
  Cmd.v
    (Cmd.info "kv_shell" ~doc:"interactive protected-library memcached shell")
    Term.(const run $ image $ size_mb)

let () = exit (Cmd.eval cmd)
