(** Restart persistence (§3.2, §6): the bookkeeping process shuts
    down, flushing the heap to its backing file; a new process maps
    the file and finds the entire store through the persistent roots.
    Because every pointer in the heap is position independent, the
    reload adds no rebuild code — "this reload and reuse adds no extra
    code to the system".

    Run with: dune exec examples/persistent_store.exe *)

module Client = Core.Client.Make (Platform.Real_sync)
module Plib = Client.Plib

let n_keys = 10_000

let () =
  let disk = Filename.temp_file "memcached-heap" ".img" in

  (* Generation 1: create, fill, shut down. *)
  let gen1 = Simos.Process.make ~uid:1000 "bookkeeper-gen1" in
  let p1 =
    Plib.create ~path:"/dev/shm/persist-kv" ~size:(64 lsl 20) ~owner:gen1 ()
  in
  for i = 0 to n_keys - 1 do
    ignore
      (Plib.set p1 ~flags:(i land 0xff)
         (Printf.sprintf "user:%06d" i)
         (Printf.sprintf "profile-data-%d" i))
  done;
  ignore (Plib.set p1 "visits" "123456");
  Printf.printf "generation 1: stored %d items, heap %d KiB used\n"
    (Shm.Region.kernel_mode (fun () -> Plib.Store.curr_items (Plib.store p1)))
    (Ralloc.used_bytes (Plib.heap p1) / 1024);
  Plib.shutdown p1 ~disk_path:disk;
  Printf.printf "generation 1: flushed to %s (%d KiB) and exited\n" disk
    ((Unix.stat disk).Unix.st_size / 1024);

  (* Generation 2: a different process maps the file. Nothing is
     rebuilt; the hash table, LRU lists and items are simply found. *)
  let gen2 = Simos.Process.make ~uid:1000 "bookkeeper-gen2" in
  let p2 =
    Plib.restart ~disk_path:disk ~path:"/dev/shm/persist-kv-gen2" ~owner:gen2 ()
  in
  let items =
    Shm.Region.kernel_mode (fun () -> Plib.Store.curr_items (Plib.store p2))
  in
  Printf.printf "generation 2: mapped the heap, found %d items\n" items;
  assert (items = n_keys + 1);
  (* spot-check contents and metadata *)
  (match Plib.get p2 "user:004242" with
   | Some r ->
     assert (r.Mc_core.Store.value = "profile-data-4242");
     assert (r.Mc_core.Store.flags = 4242 land 0xff)
   | None -> failwith "user:004242 lost across restart");
  (match Plib.incr p2 "visits" 1L with
   | Mc_core.Store.Counter v -> Printf.printf "visits counter resumed at %Ld\n" v
   | _ -> failwith "counter lost");
  Shm.Region.kernel_mode (fun () ->
    Plib.Store.check_invariants (Plib.store p2));
  Printf.printf "all invariants hold after restart\n";
  Sys.remove disk;
  print_endline "persistent_store OK"
