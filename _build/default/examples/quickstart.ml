(** Quickstart: stand up a protected-library memcached and use both
    client APIs, on real threads.

    Run with: dune exec examples/quickstart.exe *)

module Client = Core.Client.Make (Platform.Real_sync)
module Plib = Client.Plib
open Core.Errors

let () =
  (* 1. The bookkeeping process creates the shared store: a 64 MiB
        Ralloc heap inside a pkey-protected region, reachable only
        through Hodor trampolines. *)
  let bookkeeper = Simos.Process.make ~uid:1000 "memcached-bookkeeper" in
  let plib =
    Plib.create ~path:"/dev/shm/quickstart-kv" ~size:(64 lsl 20)
      ~owner:bookkeeper ()
  in
  Printf.printf "store created by %s (uid %d), protected by %s\n"
    (Simos.Process.name bookkeeper)
    (Simos.Process.uid bookkeeper)
    (Format.asprintf "%a" Pku.Pkey.pp (Hodor.Library.pkey (Plib.library plib)));

  (* 2. A client process links the library (the loader opens the store
        file with the owner's euid — the client itself has no rights
        to it). *)
  let app = Simos.Process.make ~uid:2000 "my-application" in
  Plib.open_client plib ~process:app;

  Simos.Process.with_process app (fun () ->
    (* 3a. The classic, libmemcached-compatible API: a drop-in
           replacement — the memcached_st argument is still there. *)
    let st = Client.memcached_create (Client.Plib_backend plib) in
    assert (Client.memcached_set st ~flags:42 "greeting" "hello, world"
            = MEMCACHED_SUCCESS);
    (match Client.memcached_get st "greeting" with
     | Ok (value, flags) ->
       Printf.printf "classic API: get greeting -> %S (flags %d)\n" value flags
     | Error e -> failwith (Core.Errors.to_string e));

    (* 3b. The slim Direct API: no memcached_st, no server list, no
           protocol configuration — calls go straight through the
           trampoline. *)
    Client.Direct.memcached_init plib;
    ignore (Client.Direct.set "counter" "0");
    for _ = 1 to 5 do
      ignore (Client.Direct.incr "counter" 10L)
    done;
    (match Client.Direct.get "counter" with
     | Some r -> Printf.printf "direct API: counter -> %s\n" r.Mc_core.Store.value
     | None -> assert false);

    (* 3c. The async interface: with sockets this hid latency; with the
           protected library every call completes immediately, so the
           callback runs right after the trampoline returns. *)
    ignore (Client.memcached_set st "a" "1");
    ignore (Client.memcached_set st "b" "2");
    ignore
      (Client.memcached_mget_execute st [ "a"; "b"; "missing" ]
         ~callback:(fun ~key ~value ~flags:_ ->
           Printf.printf "async callback: %s=%s\n" key value));

    (* 4. The protection is real: touching the heap outside a library
          call takes a protection fault. *)
    (match Shm.Region.read_u8 (Plib.region plib) 0 with
     | _ -> assert false
     | exception Pku.Fault.Protection_fault msg ->
       Printf.printf "direct heap access outside the library: FAULT\n  (%s)\n"
         msg));

  Printf.printf "stats: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (k, v) ->
            if List.mem k [ "curr_items"; "cmd_set"; "get_hits" ] then
              Some (k ^ "=" ^ v)
            else None)
          (Plib.stats plib)));
  print_endline "quickstart OK"
