(** The protection story, end to end (§2, §3.3):

    1. a well-behaved binary calls the store through loader-installed
       trampolines — fine;
    2. a malicious binary carries its own [wrpkru] to open the store's
       protection key — the loader's scan plants a hardware breakpoint
       on it and the attempt traps;
    3. the same attack on an {e unscanned} binary succeeds, which is
       exactly why Hodor's modified loader exists;
    4. a binary with more than four strays exhausts the debug
       registers and falls back to page-permission gating.

    Run with: dune exec examples/security_demo.exe *)

module Client = Core.Client.Make (Platform.Real_sync)
module Plib = Client.Plib
open Pku.Insn

let () =
  let owner = Simos.Process.make ~uid:1000 "bookkeeper" in
  let plib =
    Plib.create ~path:"/dev/shm/security-kv" ~size:(32 lsl 20) ~owner ()
  in
  let lib = Plib.library plib in
  ignore (Plib.set plib "secret" "hunter2");

  (* Export an entry point, as the loader would wire trampolines. *)
  Hodor.Library.export lib ~entry:"memcached_get" (fun () ->
    ignore (Plib.Store.get (Plib.store plib) "secret"));

  (* 1. the honest application *)
  let honest = make "honest-app" [| Compute 100; Call "memcached_get"; Ret |] in
  let dr = Pku.Debug_regs.create () in
  let report = Hodor.Loader.scan_and_arm dr honest in
  Printf.printf "honest app: %d stray wrpkru found; runs fine\n"
    report.Hodor.Loader.strays_found;
  Hodor.Loader.exec dr lib honest;

  (* 2. the attacker, loaded properly *)
  let open_key_pkru =
    Pku.Pkru.set_perm (Pku.Pkru.read ()) (Hodor.Library.pkey lib)
      Pku.Pkru.Enable
  in
  let evil = make "evil-app" [| Compute 1; Wrpkru open_key_pkru; Ret |] in
  let report = Hodor.Loader.scan_and_arm dr evil in
  Printf.printf "evil app: %d stray wrpkru; loader armed %d breakpoint(s)\n"
    report.Hodor.Loader.strays_found report.Hodor.Loader.breakpoints;
  (match Hodor.Loader.exec dr lib evil with
   | () -> failwith "the attack must trap!"
   | exception Pku.Fault.Breakpoint_trap msg ->
     Printf.printf "attack trapped: %s\n" msg);

  (* 3. what would happen without the loader's scan *)
  Pku.Pkru.reset_thread ();
  let unscanned_dr = Pku.Debug_regs.create () in
  Hodor.Loader.exec unscanned_dr lib evil;
  (match Shm.Region.read_string (Plib.region plib) ~off:0 ~len:8 with
   | _ ->
     Printf.printf
       "without the scan, the stray wrpkru succeeds: the attacker now reads the heap freely\n"
   | exception Pku.Fault.Protection_fault _ -> failwith "unexpected");
  Pku.Pkru.reset_thread ();

  (* 4. more strays than debug registers: page-permission fallback *)
  let flood =
    make "flooded-app" (Array.init 7 (fun _ -> Wrpkru open_key_pkru))
  in
  let dr2 = Pku.Debug_regs.create () in
  let report = Hodor.Loader.scan_and_arm dr2 flood in
  Printf.printf
    "flooded app: %d strays -> %d breakpoints + %d gated page(s)\n"
    report.Hodor.Loader.strays_found report.Hodor.Loader.breakpoints
    report.Hodor.Loader.pages_gated;
  (match Hodor.Loader.exec dr2 lib flood with
   | () -> failwith "must trap"
   | exception Pku.Fault.Breakpoint_trap _ -> print_endline "gated page trapped too");

  print_endline "security_demo OK"
