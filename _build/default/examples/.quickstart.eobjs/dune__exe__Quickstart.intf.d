examples/quickstart.mli:
