examples/quickstart.ml: Core Format Hodor List Mc_core Pku Platform Printf Shm Simos String
