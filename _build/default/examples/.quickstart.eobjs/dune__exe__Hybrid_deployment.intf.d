examples/hybrid_deployment.mli:
