examples/security_demo.ml: Array Core Hodor Pku Platform Printf Shm Simos
