examples/hybrid_deployment.ml: Core Mc_core Printf Simos Vm
