examples/persistent_store.ml: Core Filename Mc_core Platform Printf Ralloc Shm Simos Sys Unix
