examples/persistent_store.mli:
