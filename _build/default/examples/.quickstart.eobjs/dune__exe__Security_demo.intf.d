examples/security_demo.mli:
