examples/multi_tenant.ml: Array Atomic Core Hodor List Mc_core Platform Printf Shm Simos Thread
