examples/web_cache.ml: Atomic Core Mc_server Printf Simos String Vm Ycsb
