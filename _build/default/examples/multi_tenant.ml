(** Multi-tenant sharing with independent failure — the paper's
    headline safety scenario (§3.4).

    Several "processes" (real threads bound to simulated process
    identities) share one protected store. One of them is SIGKILLed in
    the middle of a library call; the call completes, the store's
    invariants hold, and every other tenant keeps running.

    Run with: dune exec examples/multi_tenant.exe *)

module Client = Core.Client.Make (Platform.Real_sync)
module Plib = Client.Plib
module Process = Simos.Process

let tenants = 4

let ops_per_tenant = 2_000

let () =
  let owner = Simos.Process.make ~uid:1000 "bookkeeper" in
  let plib =
    Plib.create ~path:"/dev/shm/multi-tenant-kv" ~size:(64 lsl 20) ~owner ()
  in
  (* The bookkeeping process also runs its cleaner in the background,
     evicting cold items if space runs low (§3.2). *)
  Plib.start_cleaner ~interval_ns:2_000_000 plib;

  let kill_flag = Atomic.make false in
  let completed = Array.make tenants 0 in
  let killed_mid_call = Atomic.make 0 in

  let tenant_thread i =
    let proc = Process.make ~uid:(2000 + i) (Printf.sprintf "tenant-%d" i) in
    Plib.open_client plib ~process:proc;
    Process.with_process proc (fun () ->
      try
        for j = 0 to ops_per_tenant - 1 do
          let key = Printf.sprintf "tenant%d:key%d" i (j mod 97) in
          (match j mod 3 with
           | 0 -> ignore (Plib.set plib key (Printf.sprintf "%d.%d" i j))
           | 1 -> ignore (Plib.get plib key)
           | _ -> ignore (Plib.delete plib key));
          (* Tenant 0 gets SIGKILLed partway through its run — from
             "outside", while possibly inside a library call. *)
          if i = 0 && j = ops_per_tenant / 2
             && not (Atomic.exchange kill_flag true)
          then
            Process.kill ~now_ns:(Hodor.Runtime.now_ns ()) proc;
          completed.(i) <- j + 1
        done
      with Process.Process_killed _ ->
        (* the dying thread finished its in-flight call first *)
        Atomic.incr killed_mid_call)
  in
  let threads = List.init tenants (fun i -> Thread.create tenant_thread i) in
  List.iter Thread.join threads;
  Plib.stop_cleaner plib;

  Printf.printf "tenant 0 was killed after %d ops (mid-call kills observed: %d)\n"
    completed.(0) (Atomic.get killed_mid_call);
  for i = 1 to tenants - 1 do
    Printf.printf "tenant %d finished all %d ops\n" i completed.(i);
    assert (completed.(i) = ops_per_tenant)
  done;

  (* The store survived the tenant's death with its invariants intact,
     and remains fully usable. *)
  Shm.Region.kernel_mode (fun () ->
    Plib.Store.check_invariants (Plib.store plib));
  let survivor = Process.make ~uid:3000 "late-arrival" in
  Process.with_process survivor (fun () ->
    assert (Plib.set plib "after-the-crash" "still working" = Mc_core.Store.Stored);
    assert (Plib.get plib "after-the-crash" <> None));
  Printf.printf "store invariants hold; library still serving. \n";
  print_endline "multi_tenant OK"
