(** A web-tier page cache, the workload memcached's intro motivates:
    render pages, cache them, serve hits — run twice, once against the
    socket server and once against the protected library, inside the
    virtual-time machine so the latency difference is visible exactly.

    Run with: dune exec examples/web_cache.exe *)

module S = Vm.Sync
module Client = Core.Client.Make (Vm.Sync)
module Server = Mc_server.Server.Make (Vm.Sync)
open Core.Errors

let pages = 200

let requests = 5_000

let render_cost_ns = 120_000 (* "rendering" a page costs 120 us *)

let page_body i = Printf.sprintf "<html><body>page %d %s</body></html>" i (String.make 400 'x')

(* The web handler: look in the cache, render + fill on a miss. *)
let handle_request st rng =
  let page = Ycsb.Rng.next_int rng pages in
  let key = Printf.sprintf "page:%d" page in
  match Client.memcached_get st key with
  | Ok _ -> `Hit
  | Error MEMCACHED_NOTFOUND ->
    S.advance render_cost_ns;
    ignore (Client.memcached_set st ~exptime:300 key (page_body page));
    `Miss
  | Error e -> failwith (to_string e)

let run_tier ~label (make_st : unit -> Client.memcached_st * (unit -> unit)) =
  let vm = Vm.create () in
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let lat = Ycsb.Histogram.create () in
  ignore (Vm.spawn vm ~name:"web-tier" (fun () ->
    let st, teardown = make_st () in
    let rng = Ycsb.Rng.create 7 in
    for _ = 1 to requests do
      let t0 = S.now_ns () in
      (match handle_request st rng with
       | `Hit -> Atomic.incr hits
       | `Miss -> Atomic.incr misses);
      Ycsb.Histogram.record lat (S.now_ns () - t0)
    done;
    teardown ()));
  Vm.run vm;
  Printf.printf
    "%-28s %5d hits %4d misses | request p50 %6.1f us  p99 %7.1f us\n" label
    (Atomic.get hits) (Atomic.get misses)
    (float_of_int (Ycsb.Histogram.percentile lat 50.0) /. 1e3)
    (float_of_int (Ycsb.Histogram.percentile lat 99.0) /. 1e3);
  float_of_int (Ycsb.Histogram.percentile lat 50.0)

let () =
  (* Socket-backed tier: the classic deployment. *)
  let socket_p50 =
    run_tier ~label:"socket memcached" (fun () ->
      let srv =
        Server.start
          ~cfg:{ Mc_server.Server.default_config with workers = 4 }
          ~name:"web-cache" ()
      in
      ( Client.memcached_create
          (Client.Socket_backend (Client.Sock.connect ~name:"web-cache" ())),
        fun () -> Server.stop srv ))
  in
  (* Protected-library tier: same handler code, same classic API —
     only the backend changed (the drop-in replacement story, §3.1). *)
  let owner = Simos.Process.make ~uid:1000 "bookkeeper" in
  let plib =
    Client.Plib.create ~path:"/dev/shm/web-cache-kv" ~size:(64 lsl 20) ~owner ()
  in
  let plib_p50 =
    run_tier ~label:"protected-library memcached" (fun () ->
      (Client.memcached_create (Client.Plib_backend plib), fun () -> ()))
  in
  Printf.printf "cache-hit p50 speedup: ~%.0fx\n" (socket_p50 /. plib_p50);
  print_endline "web_cache OK"
