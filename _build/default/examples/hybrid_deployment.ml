(** The hybrid deployment of §6: "allow the memcached background
    process to provide a socket-based interface for remote clients
    while still permitting local clients to use the Hodor interface."

    One shared store; a remote tenant reaches it over the socket
    server run by the bookkeeping process, a local tenant through
    trampolines — and each sees the other's writes immediately, at its
    own latency.

    Run with: dune exec examples/hybrid_deployment.exe *)

module S = Vm.Sync
module Client = Core.Client.Make (Vm.Sync)
module Plib = Client.Plib

let () =
  let owner = Simos.Process.make ~uid:1000 "bookkeeper" in
  let plib =
    Plib.create ~path:"/dev/shm/hybrid-kv" ~size:(64 lsl 20) ~owner ()
  in
  let vm = Vm.create () in
  ignore (Vm.spawn vm ~name:"main" (fun () ->
    (* the bookkeeping process exposes its store over a socket *)
    let srv = Plib.serve_remote plib ~name:"memcached-hybrid" in

    (* remote tenant: classic socket path (as if on another machine) *)
    let remote = Client.Sock.connect ~name:"memcached-hybrid" () in
    let t0 = S.now_ns () in
    assert (Client.Sock.set remote "who" "remote" = Mc_core.Store.Stored);
    let remote_set_ns = S.now_ns () - t0 in

    (* local tenant: the Hodor path, same data *)
    (match Plib.get plib "who" with
     | Some r -> Printf.printf "local read of remote write: %S\n" r.Mc_core.Store.value
     | None -> assert false);
    let t0 = S.now_ns () in
    assert (Plib.set plib "who" "local" = Mc_core.Store.Stored);
    let local_set_ns = S.now_ns () - t0 in
    (match Client.Sock.get remote "who" with
     | Some r -> Printf.printf "remote read of local write: %S\n" r.Mc_core.Store.value
     | None -> assert false);

    Printf.printf "set latency: remote %.1f us over sockets, local %.2f us through Hodor (%.0fx)\n"
      (float_of_int remote_set_ns /. 1e3)
      (float_of_int local_set_ns /. 1e3)
      (float_of_int remote_set_ns /. float_of_int local_set_ns);

    (* a counter both sides bump: one store, one truth *)
    ignore (Plib.set plib "hits" "0");
    for _ = 1 to 10 do
      ignore (Client.Sock.incr remote "hits" 1L);
      ignore (Plib.incr plib "hits" 1L)
    done;
    (match Plib.get plib "hits" with
     | Some r ->
       Printf.printf "counter after 10 remote + 10 local increments: %s\n"
         r.Mc_core.Store.value;
       assert (r.Mc_core.Store.value = "20")
     | None -> assert false);
    Plib.stop_remote srv));
  Vm.run vm;
  print_endline "hybrid_deployment OK"
