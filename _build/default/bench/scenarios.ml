(** Shared plumbing for the paper-reproduction benchmarks: everything
    here runs inside the virtual-time machine on the modeled 10-core /
    20-hyperthread Xeon. *)

module S = Vm.Sync
module Cl = Core.Client.Make (Vm.Sync)
module Plib = Cl.Plib
module Sock = Cl.Sock
module Srv = Mc_server.Server.Make (Vm.Sync)
module Run = Ycsb.Runner.Make (Vm.Sync)
module CM = Platform.Cost_model

(* Run [f] as the main thread of a fresh simulation and hand back its
   result (wall-clock here is virtual). *)
let in_vm ?config f =
  let vm = Vm.create ?config () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  match !out with
  | Some v -> v
  | None -> failwith "in_vm: main thread produced no result"

(* ---- Store builders --------------------------------------------------- *)

let fresh_names = Atomic.make 0

let fresh_name prefix =
  Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add fresh_names 1)

let store_cfg ~hashpower =
  { Mc_core.Store.default_config with hashpower; lock_count = 1024;
    lru_count = 64; stats_slots = 64 }

let make_plib ~protection ~size ~hashpower () =
  let owner = Simos.Process.make ~uid:1000 (fresh_name "memcached-bk") in
  Plib.create ~protection ~store_cfg:(store_cfg ~hashpower)
    ~path:(fresh_name "/dev/shm/kv") ~size ~owner ()

let make_baseline_store ~mem_limit ~hashpower () =
  let arena = Mc_core.Private_memory.create ~limit:(2 * mem_limit) in
  let slab = Mc_core.Slab.create ~arena ~mem_limit in
  Srv.Store.create ~mem:arena ~alloc:slab
    { (store_cfg ~hashpower) with lru_by_size_class = true }

(* ---- YCSB adapters ------------------------------------------------------ *)

(* Both adapters charge the YCSB driver's own per-op cost, as the
   paper's Java harness pays it regardless of backend. *)

let plib_db plib : Ycsb.Runner.db =
  { db_read =
      (fun k ->
        S.advance CM.current.ycsb_driver;
        Plib.get plib k <> None);
    db_update =
      (fun k v ->
        S.advance CM.current.ycsb_driver;
        Plib.set plib k v = Mc_core.Store.Stored) }

let sock_db conn : Ycsb.Runner.db =
  { db_read =
      (fun k ->
        S.advance CM.current.ycsb_driver;
        Sock.get conn k <> None);
    db_update =
      (fun k v ->
        S.advance CM.current.ycsb_driver;
        Sock.set conn k v = Mc_core.Store.Stored) }

(* Load the dataset straight into a store object (the load phase is
   not part of any measurement). *)
let load_plib plib w =
  in_vm (fun () ->
    Run.load w
      { db_read = (fun k -> Plib.get plib k <> None);
        db_update = (fun k v -> Plib.set plib k v = Mc_core.Store.Stored) })

let load_baseline store w =
  in_vm (fun () ->
    Run.load w
      { db_read = (fun k -> Srv.Store.get store k <> None);
        db_update =
          (fun k v -> Srv.Store.set store k v = Mc_core.Store.Stored) })

(* ---- Throughput measurement points ---------------------------------------- *)

let baseline_point ~store ~workers ~threads (w : Ycsb.Workload.t) =
  let name = fresh_name "mc" in
  in_vm (fun () ->
    let cfg =
      { Mc_server.Server.default_config with workers;
        store = { (store_cfg ~hashpower:16) with lru_by_size_class = true } }
    in
    let srv = Srv.start ~cfg ~prebuilt:store ~name () in
    let conns = Array.init threads (fun _ -> Sock.connect ~name ()) in
    let res = Run.run ~threads w ~db_for:(fun i -> sock_db conns.(i)) in
    Srv.stop srv;
    res)

let plib_point ~plib ~threads (w : Ycsb.Workload.t) =
  in_vm (fun () -> Run.run ~threads w ~db_for:(fun _ -> plib_db plib))

(* ---- Output helpers ----------------------------------------------------------- *)

let us ns = float_of_int ns /. 1e3

let pf = Printf.printf

let header title =
  pf "\n================================================================\n";
  pf "%s\n" title;
  pf "================================================================\n"
