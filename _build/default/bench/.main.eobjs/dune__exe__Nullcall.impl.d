bench/nullcall.ml: Hodor S Scenarios Transport Vm
