bench/main.ml: Ablations Array Complexity Fig5 List Micro Nullcall Printf String Sys Throughput
