bench/fig5.ml: Hodor List Mc_server Plib S Scenarios Sock Srv String
