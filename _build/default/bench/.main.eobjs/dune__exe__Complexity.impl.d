bench/complexity.ml: Array Filename List Scenarios Sys
