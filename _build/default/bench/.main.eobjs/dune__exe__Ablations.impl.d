bench/ablations.ml: Bytes List Plib Printf S Scenarios Simos String Ycsb
