bench/scenarios.ml: Array Atomic Core Mc_core Mc_server Platform Printf Simos Vm Ycsb
