bench/main.mli:
