bench/throughput.ml: Hodor List Printf Scenarios Ycsb
