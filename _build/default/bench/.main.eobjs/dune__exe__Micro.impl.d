bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Mc_core Measure Pku Platform Printf Ralloc Scenarios Shm Staged String Test Time Toolkit
