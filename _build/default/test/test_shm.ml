(** Shared region: protection enforcement, accessors, persistence,
    per-process mappings. *)

module Region = Shm.Region
module Mapping = Shm.Mapping
module Pkru = Pku.Pkru

let with_key f =
  let k = Pku.Pkey.alloc () in
  Fun.protect ~finally:(fun () -> Pku.Pkey.free k) (fun () -> f k)

let open_key k =
  Pkru.wrpkru (Pkru.set_perm (Pkru.read ()) k Pkru.Enable)

let test_accessor_roundtrips () =
  let r = Region.create ~name:"t" ~size:8192 ~pkey:0 () in
  Region.write_u8 r 0 0xAB;
  Alcotest.(check int) "u8" 0xAB (Region.read_u8 r 0);
  Region.write_i32 r 4 (-123456);
  Alcotest.(check int) "i32" (-123456) (Region.read_i32 r 4);
  Region.write_i64 r 8 0x1234_5678_9ABC;
  Alcotest.(check int) "i64" 0x1234_5678_9ABC (Region.read_i64 r 8);
  Region.write_string r ~off:100 "hello world";
  Alcotest.(check string) "string" "hello world"
    (Region.read_string r ~off:100 ~len:11);
  Alcotest.(check bool) "equal_string" true
    (Region.equal_string r ~off:100 ~len:11 "hello world");
  Alcotest.(check bool) "equal_string mismatch" false
    (Region.equal_string r ~off:100 ~len:11 "hello worlx")

let test_blits () =
  let r = Region.create ~name:"t" ~size:8192 ~pkey:0 () in
  let src = Bytes.of_string "abcdef" in
  Region.blit_from_bytes r ~src ~src_off:1 ~dst_off:10 ~len:4;
  Alcotest.(check string) "blit in" "bcde" (Region.read_string r ~off:10 ~len:4);
  let dst = Bytes.make 4 '_' in
  Region.blit_to_bytes r ~src_off:10 ~dst ~dst_off:0 ~len:4;
  Alcotest.(check string) "blit out" "bcde" (Bytes.to_string dst);
  Region.blit_within r ~src_off:10 ~dst_off:20 ~len:4;
  Alcotest.(check string) "blit within" "bcde"
    (Region.read_string r ~off:20 ~len:4);
  Region.fill r ~off:30 ~len:3 'z';
  Alcotest.(check string) "fill" "zzz" (Region.read_string r ~off:30 ~len:3)

let test_bounds_checked () =
  let r = Region.create ~name:"t" ~size:4096 ~pkey:0 () in
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ (fun () -> ignore (Region.read_u8 r (-1)));
      (fun () -> ignore (Region.read_i64 r 4090));
      (fun () -> Region.write_string r ~off:4095 "toolong") ]

let test_protection_fault_outside_key () =
  with_key (fun k ->
    let r = Region.create ~name:"locked" ~size:4096 ~pkey:k () in
    Pkru.reset_thread ();
    (match Region.read_u8 r 0 with
     | _ -> Alcotest.fail "expected Protection_fault on read"
     | exception Pku.Fault.Protection_fault _ -> ());
    (match Region.write_u8 r 0 1 with
     | _ -> Alcotest.fail "expected Protection_fault on write"
     | exception Pku.Fault.Protection_fault _ -> ());
    (* open the key: access works *)
    open_key k;
    Region.write_u8 r 0 7;
    Alcotest.(check int) "allowed with key open" 7 (Region.read_u8 r 0);
    (* write-disable: read ok, write faults *)
    Pkru.wrpkru (Pkru.set_perm (Pkru.read ()) k Pkru.Write_disable);
    Alcotest.(check int) "read-only read ok" 7 (Region.read_u8 r 0);
    (match Region.write_u8 r 0 9 with
     | _ -> Alcotest.fail "expected write fault"
     | exception Pku.Fault.Protection_fault _ -> ());
    Pkru.reset_thread ())

let test_kernel_mode_bypasses () =
  with_key (fun k ->
    let r = Region.create ~name:"locked" ~size:4096 ~pkey:k () in
    Pkru.reset_thread ();
    Region.kernel_mode (fun () -> Region.write_i64 r 0 99);
    Alcotest.(check int) "kernel write visible in kernel read" 99
      (Region.kernel_mode (fun () -> Region.read_i64 r 0));
    (* kernel mode restores on exit, even across exceptions *)
    (try Region.kernel_mode (fun () -> failwith "boom") with Failure _ -> ());
    (match Region.read_i64 r 0 with
     | _ -> Alcotest.fail "restriction must be restored"
     | exception Pku.Fault.Protection_fault _ -> ()))

let test_page_granular_tags () =
  with_key (fun k ->
    let r = Region.create ~name:"mixed" ~size:(3 * Region.page_size) ~pkey:0 () in
    Region.tag_range r ~off:Region.page_size ~len:Region.page_size ~pkey:k;
    Pkru.reset_thread ();
    Region.write_u8 r 0 1 (* page 0: key 0, fine *);
    Region.write_u8 r (2 * Region.page_size) 1 (* page 2: fine *);
    (match Region.write_u8 r Region.page_size 1 with
     | _ -> Alcotest.fail "page 1 must fault"
     | exception Pku.Fault.Protection_fault _ -> ());
    (* a blit crossing into the protected page must fault too *)
    (match
       Region.blit_from_bytes r ~src:(Bytes.make 64 'x')
         ~src_off:0 ~dst_off:(Region.page_size - 32) ~len:64
     with
     | _ -> Alcotest.fail "crossing blit must fault"
     | exception Pku.Fault.Protection_fault _ -> ()))

let test_atomic_slots () =
  let r = Region.create ~name:"t" ~size:4096 ~atomic_slots:4 () ~pkey:0 in
  let s1 = Region.alloc_atomic r and s2 = Region.alloc_atomic r in
  Alcotest.(check bool) "distinct slots" true (s1 <> s2);
  Atomic.set (Region.atomic r s1) 41;
  Atomic.incr (Region.atomic r s1);
  Alcotest.(check int) "cas slot" 42 (Atomic.get (Region.atomic r s1));
  ignore (Region.alloc_atomic r);
  ignore (Region.alloc_atomic r);
  (match Region.alloc_atomic r with
   | _ -> Alcotest.fail "expected slot exhaustion"
   | exception Failure _ -> ())

let test_persistence_roundtrip () =
  let path = Filename.temp_file "region" ".img" in
  let r = Region.create ~name:"persist" ~size:16384 ~pkey:0 () in
  Region.write_string r ~off:123 "durable";
  Atomic.set (Region.atomic r (Region.alloc_atomic r)) 77;
  Region.tag_range r ~off:4096 ~len:4096 ~pkey:5;
  Region.flush r ~path;
  let r2 = Region.load ~path in
  Alcotest.(check string) "bytes survive" "durable"
    (Region.read_string r2 ~off:123 ~len:7);
  Alcotest.(check int) "atomics survive" 77 (Atomic.get (Region.atomic r2 0));
  Alcotest.(check int) "pkeys survive" 5 (Region.pkey_of_page r2 1);
  Alcotest.(check string) "name survives" "persist" (Region.name r2);
  Sys.remove path

let test_load_rejects_garbage () =
  let path = Filename.temp_file "garbage" ".img" in
  let oc = open_out path in
  output_string oc "not a region";
  close_out oc;
  (match Region.load ~path with
   | _ -> Alcotest.fail "expected failure"
   | exception _ -> ());
  Sys.remove path

let test_mapping_translation () =
  let r = Region.create ~name:"m" ~size:8192 ~pkey:0 () in
  let m1 = Mapping.map r and m2 = Mapping.map r in
  Alcotest.(check bool) "distinct bases" true (Mapping.base m1 <> Mapping.base m2);
  let a = Mapping.addr_of_off m1 100 in
  Alcotest.(check int) "roundtrip" 100 (Mapping.off_of_addr m1 a);
  Alcotest.(check bool) "address belongs to m1 only" true
    (Mapping.contains m1 a && not (Mapping.contains m2 a));
  (match Mapping.off_of_addr m2 a with
   | _ -> Alcotest.fail "foreign address must be rejected"
   | exception Invalid_argument _ -> ())

let qcheck_rw_roundtrip =
  QCheck.Test.make ~name:"write_string/read_string roundtrip" ~count:100
    QCheck.(pair (int_range 0 3000) (string_of_size (QCheck.Gen.int_range 1 64)))
    (fun (off, s) ->
      let r = Region.create ~name:"q" ~size:4096 ~pkey:0 () in
      if off + String.length s > 4096 then true
      else begin
        Region.write_string r ~off s;
        Region.read_string r ~off ~len:(String.length s) = s
      end)

let () =
  Alcotest.run "shm"
    [ ( "accessors",
        [ Alcotest.test_case "roundtrips" `Quick test_accessor_roundtrips;
          Alcotest.test_case "blits" `Quick test_blits;
          Alcotest.test_case "bounds" `Quick test_bounds_checked;
          QCheck_alcotest.to_alcotest qcheck_rw_roundtrip ] );
      ( "protection",
        [ Alcotest.test_case "fault outside key" `Quick
            test_protection_fault_outside_key;
          Alcotest.test_case "kernel mode" `Quick test_kernel_mode_bypasses;
          Alcotest.test_case "page-granular tags" `Quick
            test_page_granular_tags ] );
      ( "state",
        [ Alcotest.test_case "atomic slots" `Quick test_atomic_slots;
          Alcotest.test_case "persistence" `Quick test_persistence_roundtrip;
          Alcotest.test_case "garbage file rejected" `Quick
            test_load_rejects_garbage;
          Alcotest.test_case "mapping translation" `Quick
            test_mapping_translation ] ) ]
