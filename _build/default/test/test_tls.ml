let test_per_thread_isolation () =
  let key = Tls.new_key (fun () -> ref 0) in
  Tls.get key := 1;
  let seen = ref (-1) in
  let th =
    Thread.create
      (fun () ->
        (* a fresh thread sees a fresh slot *)
        seen := !(Tls.get key);
        Tls.set key (ref 42))
      ()
  in
  Thread.join th;
  Alcotest.(check int) "other thread starts from init" 0 !seen;
  Alcotest.(check int) "this thread kept its value" 1 !(Tls.get key)

let test_lazy_init_once () =
  let calls = ref 0 in
  let key =
    Tls.new_key (fun () ->
      incr calls;
      "v")
  in
  ignore (Tls.get key);
  ignore (Tls.get key);
  Alcotest.(check int) "init ran once" 1 !calls

let test_set_get_clear () =
  let key = Tls.new_key (fun () -> "default") in
  Alcotest.(check string) "default" "default" (Tls.get key);
  Tls.set key "changed";
  Alcotest.(check string) "changed" "changed" (Tls.get key);
  Tls.clear key;
  Alcotest.(check string) "re-initialised" "default" (Tls.get key)

let test_provider_routing () =
  let key = Tls.new_key (fun () -> 0) in
  Tls.set key 7;
  let t1 = Tls.fresh_table () and t2 = Tls.fresh_table () in
  let current = ref t1 in
  Tls.install_provider (fun () -> !current);
  Fun.protect ~finally:Tls.remove_provider (fun () ->
    Alcotest.(check bool) "provider active" true (Tls.provider_installed ());
    Tls.set key 100;
    current := t2;
    Alcotest.(check int) "t2 starts fresh" 0 (Tls.get key);
    Tls.set key 200;
    current := t1;
    Alcotest.(check int) "t1 kept its value" 100 (Tls.get key));
  Alcotest.(check bool) "provider removed" false (Tls.provider_installed ());
  Alcotest.(check int) "default table restored" 7 (Tls.get key)

let test_distinct_keys_independent () =
  let k1 = Tls.new_key (fun () -> 1) and k2 = Tls.new_key (fun () -> 2) in
  Tls.set k1 10;
  Alcotest.(check int) "k2 untouched" 2 (Tls.get k2)

let () =
  Alcotest.run "tls"
    [ ( "tls",
        [ Alcotest.test_case "per-thread isolation" `Quick
            test_per_thread_isolation;
          Alcotest.test_case "lazy init once" `Quick test_lazy_init_once;
          Alcotest.test_case "set/get/clear" `Quick test_set_get_clear;
          Alcotest.test_case "provider routing" `Quick test_provider_routing;
          Alcotest.test_case "distinct keys" `Quick
            test_distinct_keys_independent ] ) ]
