(** PKU hardware model: register semantics, key allocation, the
    loader-facing binary scan and breakpoint registers. *)

module Pkru = Pku.Pkru
module Pkey = Pku.Pkey

let test_default_pkru_denies_all_but_key0 () =
  let v = Pkru.init_value in
  Alcotest.(check bool) "key 0 readable" true (Pkru.allows_read v 0);
  Alcotest.(check bool) "key 0 writable" true (Pkru.allows_write v 0);
  for k = 1 to Pkey.count - 1 do
    Alcotest.(check bool) "denied read" false (Pkru.allows_read v k);
    Alcotest.(check bool) "denied write" false (Pkru.allows_write v k)
  done

let test_set_perm_bits () =
  let v = Pkru.init_value in
  let v = Pkru.set_perm v 3 Pkru.Enable in
  Alcotest.(check bool) "enabled read" true (Pkru.allows_read v 3);
  Alcotest.(check bool) "enabled write" true (Pkru.allows_write v 3);
  let v = Pkru.set_perm v 3 Pkru.Write_disable in
  Alcotest.(check bool) "wd read ok" true (Pkru.allows_read v 3);
  Alcotest.(check bool) "wd write denied" false (Pkru.allows_write v 3);
  let v = Pkru.set_perm v 3 Pkru.Access_disable in
  Alcotest.(check bool) "ad read denied" false (Pkru.allows_read v 3);
  Alcotest.(check bool) "ad write denied" false (Pkru.allows_write v 3);
  (* neighbours untouched *)
  Alcotest.(check bool) "key 2 unchanged" false (Pkru.allows_read v 2)

let test_perm_of_roundtrip () =
  List.iter
    (fun p ->
      let v = Pkru.set_perm Pkru.init_value 5 p in
      Alcotest.(check bool) "roundtrip" true (Pkru.perm_of v 5 = p))
    [ Pkru.Enable; Pkru.Write_disable; Pkru.Access_disable ]

let test_wrpkru_is_thread_local () =
  Pkru.reset_thread ();
  Pkru.wrpkru (Pkru.set_perm (Pkru.read ()) 4 Pkru.Enable);
  let other = ref true in
  let th =
    Thread.create (fun () -> other := Pkru.allows_read (Pkru.read ()) 4) ()
  in
  Thread.join th;
  Alcotest.(check bool) "self sees open key" true
    (Pkru.allows_read (Pkru.read ()) 4);
  Alcotest.(check bool) "other thread still restricted" false !other;
  Pkru.reset_thread ()

let test_pkey_alloc_free () =
  let k1 = Pkey.alloc () in
  let k2 = Pkey.alloc () in
  Alcotest.(check bool) "distinct" true (k1 <> k2);
  Alcotest.(check bool) "valid" true (Pkey.is_valid k1 && Pkey.is_valid k2);
  Pkey.free k1;
  let k3 = Pkey.alloc () in
  Alcotest.(check int) "freed keys are reused" k1 k3;
  Pkey.free k2;
  Pkey.free k3

let test_pkey_exhaustion () =
  let keys = ref [] in
  (try
     for _ = 1 to Pkey.count do
       keys := Pkey.alloc () :: !keys
     done;
     Alcotest.fail "expected Out_of_keys"
   with Pku.Pkey.Out_of_keys -> ());
  Alcotest.(check int) "allocated all 15 allocatable keys" 15
    (List.length !keys);
  List.iter Pkey.free !keys

let test_stray_scan () =
  let open Pku.Insn in
  let b =
    make ~trampolines:[ 2 ] "app"
      [| Compute 10; Wrpkru 0; Compute 5; Wrpkru 0; Call "get"; Ret |]
  in
  Alcotest.(check (list int)) "strays exclude trampoline sites" [ 1; 3 ]
    (stray_wrpkru_addrs b)

let test_debug_regs_exhaustion_and_gating () =
  let dr = Pku.Debug_regs.create () in
  for i = 0 to 3 do
    Pku.Debug_regs.install dr ~binary:"app" ~addr:(i * 100)
  done;
  Alcotest.(check int) "four installed" 4 (Pku.Debug_regs.installed dr);
  (match Pku.Debug_regs.install dr ~binary:"app" ~addr:999 with
   | () -> Alcotest.fail "expected Exhausted"
   | exception Pku.Debug_regs.Exhausted -> ());
  Pku.Debug_regs.gate_page dr ~binary:"app"
    ~page:(Pku.Debug_regs.page_of_addr 999);
  Alcotest.(check bool) "breakpoint trips" true
    (Pku.Debug_regs.trips dr ~binary:"app" ~addr:100);
  Alcotest.(check bool) "gated page trips" true
    (Pku.Debug_regs.trips dr ~binary:"app" ~addr:999);
  Alcotest.(check bool) "same address, other binary, no trip" false
    (Pku.Debug_regs.trips dr ~binary:"other" ~addr:100);
  Pku.Debug_regs.clear dr;
  Alcotest.(check int) "cleared" 0 (Pku.Debug_regs.installed dr)

let qcheck_pkru_bits_independent =
  QCheck.Test.make ~name:"set_perm touches only its own key's bits" ~count:200
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      let v0 = Pku.Pkru.init_value in
      let v1 = Pku.Pkru.set_perm v0 k1 Pku.Pkru.Enable in
      Pku.Pkru.perm_of v1 k2 = Pku.Pkru.perm_of v0 k2)

let () =
  Alcotest.run "pku"
    [ ( "pkru",
        [ Alcotest.test_case "default restricts" `Quick
            test_default_pkru_denies_all_but_key0;
          Alcotest.test_case "set_perm bits" `Quick test_set_perm_bits;
          Alcotest.test_case "perm_of roundtrip" `Quick test_perm_of_roundtrip;
          Alcotest.test_case "thread local" `Quick test_wrpkru_is_thread_local;
          QCheck_alcotest.to_alcotest qcheck_pkru_bits_independent ] );
      ( "pkeys",
        [ Alcotest.test_case "alloc/free/reuse" `Quick test_pkey_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_pkey_exhaustion ] );
      ( "loader hardware",
        [ Alcotest.test_case "stray scan" `Quick test_stray_scan;
          Alcotest.test_case "debug regs + gating" `Quick
            test_debug_regs_exhaustion_and_gating ] ) ]
