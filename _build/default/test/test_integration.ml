(** Whole-stack integration: YCSB workloads driven end-to-end over
    both deployments inside the virtual-time machine, checked for
    functional agreement (both backends are the same store semantics)
    and for determinism of the simulation. *)

module S = Vm.Sync
module Cl = Core.Client.Make (Vm.Sync)
module Srv = Mc_server.Server.Make (Vm.Sync)
module Run = Ycsb.Runner.Make (Vm.Sync)
module Process = Simos.Process

let fresh_id = ref 100

let in_vm f =
  let vm = Vm.create () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  (Option.get !out, vm)

let small_workload ~ops =
  Ycsb.Workload.make ~name:"integration" ~record_count:2_000
    ~operation_count:ops ~read_proportion:0.8 ~field_length:64 ()

let run_plib ~threads ~ops =
  incr fresh_id;
  let owner = Process.make ~uid:1000 "bk-int" in
  let plib =
    Cl.Plib.create
      ~store_cfg:
        { Mc_core.Store.default_config with hashpower = 12; lock_count = 64;
          lru_count = 8; stats_slots = 8 }
      ~path:(Printf.sprintf "/shm/int-%d" !fresh_id)
      ~size:(32 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () -> Hodor.Library.release (Cl.Plib.library plib))
    (fun () ->
      let db =
        { Ycsb.Runner.db_read = (fun k -> Cl.Plib.get plib k <> None);
          db_update =
            (fun k v -> Cl.Plib.set plib k v = Mc_core.Store.Stored) }
      in
      let w = small_workload ~ops in
      in_vm (fun () ->
        Run.load w db;
        let r = Run.run ~threads w ~db_for:(fun _ -> db) in
        Shm.Region.kernel_mode (fun () ->
          Cl.Plib.Store.check_invariants (Cl.Plib.store plib));
        r))

let run_socket ~threads ~ops =
  incr fresh_id;
  let name = Printf.sprintf "int-%d" !fresh_id in
  let w = small_workload ~ops in
  in_vm (fun () ->
    let srv =
      Srv.start
        ~cfg:
          { Mc_server.Server.default_config with workers = 4;
            store =
              { Mc_core.Store.default_config with hashpower = 12;
                lock_count = 64; lru_count = 8; stats_slots = 8;
                lru_by_size_class = true } }
        ~name ()
    in
    (* load directly into the server's store *)
    Run.load w
      { db_read = (fun k -> Srv.Store.get (Srv.store srv) k <> None);
        db_update =
          (fun k v -> Srv.Store.set (Srv.store srv) k v = Mc_core.Store.Stored) };
    let conns = Array.init threads (fun _ -> Cl.Sock.connect ~name ()) in
    let db i =
      let c = conns.(i) in
      { Ycsb.Runner.db_read = (fun k -> Cl.Sock.get c k <> None);
        db_update = (fun k v -> Cl.Sock.set c k v = Mc_core.Store.Stored) }
    in
    let r = Run.run ~threads w ~db_for:db in
    Srv.Store.check_invariants (Srv.store srv);
    Srv.stop srv;
    r)

let test_functional_agreement () =
  (* Same workload, same seed: both deployments serve identical data,
     so the hit/miss counts must agree exactly. *)
  let (rp, _) = run_plib ~threads:4 ~ops:4_000 in
  let (rs, _) = run_socket ~threads:4 ~ops:4_000 in
  Alcotest.(check int) "ops agree" rp.Ycsb.Runner.r_ops rs.Ycsb.Runner.r_ops;
  Alcotest.(check int) "hits agree" rp.Ycsb.Runner.r_hits
    rs.Ycsb.Runner.r_hits;
  Alcotest.(check int) "zero misses on a loaded store" 0
    rp.Ycsb.Runner.r_misses

let test_plib_faster_than_socket () =
  let (rp, _) = run_plib ~threads:4 ~ops:4_000 in
  let (rs, _) = run_socket ~threads:4 ~ops:4_000 in
  let tp = Ycsb.Runner.throughput_ktps rp in
  let ts = Ycsb.Runner.throughput_ktps rs in
  Alcotest.(check bool)
    (Printf.sprintf "plib (%.0f KTPS) at least 3x socket (%.0f KTPS)" tp ts)
    true (tp > 3.0 *. ts)

let test_simulation_determinism () =
  let (r1, vm1) = run_plib ~threads:8 ~ops:3_000 in
  let (r2, vm2) = run_plib ~threads:8 ~ops:3_000 in
  Alcotest.(check int) "same virtual duration" r1.Ycsb.Runner.r_elapsed_ns
    r2.Ycsb.Runner.r_elapsed_ns;
  Alcotest.(check int) "same event count" (Vm.events_processed vm1)
    (Vm.events_processed vm2);
  Alcotest.(check int) "same hits" r1.Ycsb.Runner.r_hits r2.Ycsb.Runner.r_hits

let test_latency_orders_of_magnitude () =
  let (rp, _) = run_plib ~threads:1 ~ops:2_000 in
  let (rs, _) = run_socket ~threads:1 ~ops:2_000 in
  let p50p = Ycsb.Histogram.percentile rp.Ycsb.Runner.r_hist 50.0 in
  let p50s = Ycsb.Histogram.percentile rs.Ycsb.Runner.r_hist 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "plib p50 %dns sub-2us" p50p)
    true (p50p < 2_000);
  Alcotest.(check bool)
    (Printf.sprintf "socket p50 %dns over 10us" p50s)
    true (p50s > 10_000)

(* Drive the paper's exact workload definitions end to end (miniature
   op counts) over the plib — the benchmark harness path, asserted. *)
let test_paper_workloads_run () =
  List.iter
    (fun (small_value, read_heavy) ->
      incr fresh_id;
      let owner = Process.make ~uid:1000 "bk-paper" in
      let plib =
        Cl.Plib.create
          ~store_cfg:
            { Mc_core.Store.default_config with hashpower = 12;
              lock_count = 64; lru_count = 8; stats_slots = 8 }
          ~path:(Printf.sprintf "/shm/int-%d" !fresh_id)
          ~size:(128 lsl 20) ~owner ()
      in
      Fun.protect
        ~finally:(fun () -> Hodor.Library.release (Cl.Plib.library plib))
        (fun () ->
          let w =
            { (Ycsb.Workload.paper ~small_value ~read_heavy ~scale:1000
                 ~operation_count:1_000 ())
              with Ycsb.Workload.seed = 7 }
          in
          let db =
            { Ycsb.Runner.db_read = (fun k -> Cl.Plib.get plib k <> None);
              db_update =
                (fun k v -> Cl.Plib.set plib k v = Mc_core.Store.Stored) }
          in
          let r, _ =
            in_vm (fun () ->
              Run.load w db;
              Run.run ~threads:4 w ~db_for:(fun _ -> db))
          in
          Alcotest.(check int)
            (Printf.sprintf "paper workload %s ran all ops" w.Ycsb.Workload.name)
            1_000 r.Ycsb.Runner.r_ops;
          Alcotest.(check int) "no misses" 0 r.Ycsb.Runner.r_misses))
    [ (true, true); (true, false); (false, true); (false, false) ]

let () =
  Alcotest.run "integration"
    [ ( "end to end",
        [ Alcotest.test_case "functional agreement" `Quick
            test_functional_agreement;
          Alcotest.test_case "plib beats socket" `Quick
            test_plib_faster_than_socket;
          Alcotest.test_case "determinism" `Quick test_simulation_determinism;
          Alcotest.test_case "latency separation" `Quick
            test_latency_orders_of_magnitude;
          Alcotest.test_case "paper workloads" `Quick test_paper_workloads_run ] ) ]
