test/test_shm.mli:
