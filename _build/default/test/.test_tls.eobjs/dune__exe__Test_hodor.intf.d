test/test_hodor.mli:
