test/test_ycsb.ml: Alcotest Array Hashtbl List Mc_protocol Mutex Option Printf QCheck QCheck_alcotest String Vm Ycsb
