test/test_pku.mli:
