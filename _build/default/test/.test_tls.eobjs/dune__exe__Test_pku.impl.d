test/test_pku.ml: Alcotest List Pku QCheck QCheck_alcotest Thread
