test/test_store.ml: Alcotest Atomic Char Gen Hashtbl Int64 List Mc_core Option Platform Printf QCheck QCheck_alcotest Ralloc Random Shm Stdlib String Thread
