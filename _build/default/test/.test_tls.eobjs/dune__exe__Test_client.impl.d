test/test_client.ml: Alcotest Core Fun Hodor List Mc_core Mc_server Platform Printf Simos Vm
