test/test_transport.ml: Alcotest Atomic Core List Mc_core Mc_protocol Mc_server Option Printf String Transport Vm
