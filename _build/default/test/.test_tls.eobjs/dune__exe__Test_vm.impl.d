test/test_vm.ml: Alcotest List Printf QCheck QCheck_alcotest Tls Vm
