test/test_simos.ml: Alcotest Fun Hashtbl Printf Shm Simos
