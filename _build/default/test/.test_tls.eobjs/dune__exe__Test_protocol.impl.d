test/test_protocol.ml: Alcotest Bytes Char Gen Int64 List Mc_protocol QCheck QCheck_alcotest String
