test/test_integration.ml: Alcotest Array Core Fun Hodor List Mc_core Mc_server Option Printf Shm Simos Vm Ycsb
