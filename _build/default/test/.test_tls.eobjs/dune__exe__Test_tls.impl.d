test/test_tls.ml: Alcotest Fun Thread Tls
