test/test_plib.ml: Alcotest Atomic Bytes Core Filename Fun Hodor Int64 List Mc_core Option Pku Platform Printf Ralloc Shm Simos String Sys Vm
