test/test_shm.ml: Alcotest Atomic Bytes Filename Fun List Pku QCheck QCheck_alcotest Shm String Sys
