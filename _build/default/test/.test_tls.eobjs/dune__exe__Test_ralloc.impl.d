test/test_ralloc.ml: Alcotest Array Filename List Printf QCheck QCheck_alcotest Ralloc Random Shm Sys Thread
