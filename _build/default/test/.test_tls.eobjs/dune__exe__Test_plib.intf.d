test/test_plib.mli:
