test/test_slab.ml: Alcotest Array List Mc_core Printf QCheck QCheck_alcotest
