test/test_hodor.ml: Alcotest Array Bytes Fun Hodor List Pku Platform Shm Simos
