(** The baseline's slab allocator. *)

module Slab = Mc_core.Slab
module PM = Mc_core.Private_memory

let fresh ?(limit = 16 lsl 20) () =
  let arena = PM.create ~limit:(2 * limit) in
  Slab.create ~arena ~mem_limit:limit

let test_chunk_size_progression () =
  let sizes = Slab.chunk_sizes in
  Alcotest.(check int) "first class is 96" 96 sizes.(0);
  Alcotest.(check int) "last class is the page"
    Slab.page_size
    sizes.(Slab.n_classes - 1);
  for i = 1 to Slab.n_classes - 1 do
    if not (sizes.(i) > sizes.(i - 1)) then
      Alcotest.fail "sizes must increase";
    if sizes.(i) mod 8 <> 0 then Alcotest.fail "sizes must be 8-aligned"
  done

let test_growth_factor () =
  (* memcached's -f 1.25: each class is at most 25%ish larger *)
  let sizes = Slab.chunk_sizes in
  for i = 1 to Slab.n_classes - 2 do
    let ratio = float_of_int sizes.(i) /. float_of_int sizes.(i - 1) in
    if ratio > 1.33 then
      Alcotest.fail
        (Printf.sprintf "ratio %f between classes %d and %d" ratio (i - 1) i)
  done

let test_class_of_size () =
  Alcotest.(check int) "tiny goes to class 0" 0 (Slab.class_of_size 1);
  Alcotest.(check int) "96 in class 0" 0 (Slab.class_of_size 96);
  Alcotest.(check int) "97 in class 1" 1 (Slab.class_of_size 97);
  Alcotest.(check int) "oversize rejected" (-1)
    (Slab.class_of_size (Slab.page_size + 1))

let test_alloc_free_reuse () =
  let t = fresh () in
  let a = Slab.alloc t 100 in
  Alcotest.(check bool) "allocated" true (a <> 0);
  Alcotest.(check int) "usable = chunk size" Slab.chunk_sizes.(1)
    (Slab.usable_size t a);
  Slab.free t a;
  let b = Slab.alloc t 100 in
  Alcotest.(check int) "free list reuse" a b

let test_same_page_same_class () =
  let t = fresh () in
  let a = Slab.alloc t 100 and b = Slab.alloc t 100 in
  Alcotest.(check int) "same class" (Slab.class_of_off t a)
    (Slab.class_of_off t b);
  Alcotest.(check int) "chunks are chunk-size apart"
    Slab.chunk_sizes.(Slab.class_of_off t a)
    (abs (b - a))

let test_used_accounting () =
  let t = fresh () in
  let a = Slab.alloc t 200 in
  let expect = Slab.chunk_sizes.(Slab.class_of_size 200) in
  Alcotest.(check int) "used counts chunks" expect (Slab.used_bytes t);
  Slab.free t a;
  Alcotest.(check int) "freed" 0 (Slab.used_bytes t)

let test_mem_limit_enforced () =
  let t = fresh ~limit:(2 lsl 20) () in
  (* a 2-page limit: one page for a jumbo class, one for a small
     class; any third class's page must be denied *)
  Alcotest.(check bool) "first page" true
    (Slab.alloc t (Slab.page_size / 2) <> 0);
  Alcotest.(check bool) "second page" true (Slab.alloc t 100 <> 0);
  Alcotest.(check int) "third page denied" 0 (Slab.alloc t 10_000)

let test_big_alloc () =
  let t = fresh () in
  let off = Slab.alloc t (3 * Slab.page_size) in
  Alcotest.(check bool) "big alloc works" true (off <> 0);
  Alcotest.(check int) "usable" (3 * Slab.page_size) (Slab.usable_size t off);
  Slab.free t off;
  Alcotest.(check int) "big free returns bytes" 0 (Slab.used_bytes t)

let test_free_garbage_rejected () =
  let t = fresh () in
  ignore (Slab.alloc t 100);
  (match Slab.free t (50 * Slab.page_size) with
   | _ -> Alcotest.fail "expected rejection"
   | exception _ -> ())

let qcheck_no_overlap =
  QCheck.Test.make ~name:"live slab chunks never overlap" ~count:30
    QCheck.(small_list (int_range 1 20_000))
    (fun sizes ->
      let t = fresh () in
      let offs =
        List.filter_map
          (fun sz ->
            let o = Slab.alloc t sz in
            if o = 0 then None else Some o)
          sizes
      in
      let sorted = List.sort compare offs in
      let rec ok = function
        | o1 :: (o2 :: _ as rest) ->
          o1 + Slab.usable_size t o1 <= o2 && ok rest
        | _ -> true
      in
      ok sorted)

let () =
  Alcotest.run "slab"
    [ ( "slab",
        [ Alcotest.test_case "chunk sizes" `Quick test_chunk_size_progression;
          Alcotest.test_case "growth factor" `Quick test_growth_factor;
          Alcotest.test_case "class_of_size" `Quick test_class_of_size;
          Alcotest.test_case "alloc/free reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "page layout" `Quick test_same_page_same_class;
          Alcotest.test_case "used accounting" `Quick test_used_accounting;
          Alcotest.test_case "mem limit" `Quick test_mem_limit_enforced;
          Alcotest.test_case "big alloc" `Quick test_big_alloc;
          Alcotest.test_case "free garbage" `Quick test_free_garbage_rejected;
          QCheck_alcotest.to_alcotest qcheck_no_overlap ] ) ]
