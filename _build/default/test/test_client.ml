(** The classic (libmemcached drop-in) API over both backends, the
    strict-configuration migration aid, the immediate-callback async
    interface, and the slim Direct API. *)

module Cl = Core.Client.Make (Vm.Sync)
module Srv = Mc_server.Server.Make (Vm.Sync)
module Process = Simos.Process
open Core.Errors

let fresh_id = ref 0

(* Build one client of each backend inside a vm and run [f] on both. *)
let on_both_backends f =
  incr fresh_id;
  let id = !fresh_id in
  let owner = Process.make ~uid:1000 "bk" in
  let plib =
    Cl.Plib.create
      ~path:(Printf.sprintf "/shm/client-test-%d" id)
      ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink (Printf.sprintf "/shm/client-test-%d" id);
      Hodor.Library.release (Cl.Plib.library plib))
    (fun () ->
      let vm = Vm.create () in
      let name = Printf.sprintf "client-test-%d" id in
      ignore (Vm.spawn vm ~name:"main" (fun () ->
        let srv =
          Srv.start
            ~cfg:{ Mc_server.Server.default_config with workers = 2 }
            ~name ()
        in
        let sock =
          Cl.memcached_create
            (Cl.Socket_backend (Cl.Sock.connect ~name ()))
        in
        let pl = Cl.memcached_create (Cl.Plib_backend plib) in
        f sock;
        f pl;
        Srv.stop srv));
      Vm.run vm)

let test_full_api_equivalence () =
  on_both_backends (fun st ->
    Alcotest.(check bool) "set" true
      (Cl.memcached_set st ~flags:7 "k" "v" = MEMCACHED_SUCCESS);
    (match Cl.memcached_get st "k" with
     | Ok (v, f) ->
       Alcotest.(check string) "get value" "v" v;
       Alcotest.(check int) "get flags" 7 f
     | Error _ -> Alcotest.fail "get");
    Alcotest.(check bool) "get miss" true
      (Cl.memcached_get st "missing" = Error MEMCACHED_NOTFOUND);
    Alcotest.(check bool) "add existing" true
      (Cl.memcached_add st "k" "w" = MEMCACHED_NOTSTORED);
    Alcotest.(check bool) "add fresh" true
      (Cl.memcached_add st "k2" "w" = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "replace" true
      (Cl.memcached_replace st "k2" "x" = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "replace missing" true
      (Cl.memcached_replace st "zz" "x" = MEMCACHED_NOTSTORED);
    Alcotest.(check bool) "append" true
      (Cl.memcached_append st "k2" "!" = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "prepend" true
      (Cl.memcached_prepend st "k2" "?" = MEMCACHED_SUCCESS);
    (match Cl.memcached_get st "k2" with
     | Ok (v, _) -> Alcotest.(check string) "concat" "?x!" v
     | Error _ -> Alcotest.fail "concat get");
    (* gets + cas *)
    (match Cl.memcached_gets st "k" with
     | Ok (_, _, cas) ->
       Alcotest.(check bool) "cas ok" true
         (Cl.memcached_cas st ~cas "k" "v2" = MEMCACHED_SUCCESS);
       Alcotest.(check bool) "stale cas" true
         (Cl.memcached_cas st ~cas "k" "v3" = MEMCACHED_DATA_EXISTS)
     | Error _ -> Alcotest.fail "gets");
    (* counters *)
    ignore (Cl.memcached_set st "n" "5");
    Alcotest.(check bool) "incr" true
      (Cl.memcached_increment st "n" 10L = Ok 15L);
    Alcotest.(check bool) "decr" true
      (Cl.memcached_decrement st "n" 14L = Ok 1L);
    Alcotest.(check bool) "incr missing" true
      (Cl.memcached_increment st "none" 1L = Error MEMCACHED_NOTFOUND);
    (* delete, touch, flush *)
    Alcotest.(check bool) "delete" true
      (Cl.memcached_delete st "k" = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "delete missing" true
      (Cl.memcached_delete st "k" = MEMCACHED_NOTFOUND);
    Alcotest.(check bool) "touch" true
      (Cl.memcached_touch st "k2" 100 = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "stat" true
      (List.mem_assoc "curr_items" (Cl.memcached_stat st));
    Alcotest.(check bool) "flush" true
      (Cl.memcached_flush st = MEMCACHED_SUCCESS);
    Alcotest.(check bool) "flushed" true
      (Cl.memcached_get st "k2" = Error MEMCACHED_NOTFOUND))

let test_behaviors_nop_vs_strict () =
  on_both_backends (fun st ->
    (* default: configuration calls are accepted everywhere *)
    Alcotest.(check bool) "behavior accepted" true
      (Cl.memcached_behavior_set st Cl.BEHAVIOR_TCP_NODELAY 1
       = MEMCACHED_SUCCESS));
  (* strict mode flags them on the plib backend only *)
  incr fresh_id;
  let owner = Process.make ~uid:1000 "bk" in
  let plib =
    Cl.Plib.create
      ~path:(Printf.sprintf "/shm/strict-%d" !fresh_id)
      ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () -> Hodor.Library.release (Cl.Plib.library plib))
    (fun () ->
      let st = Cl.memcached_create (Cl.Plib_backend plib) in
      Cl.memcached_strict_configuration st true;
      match Cl.memcached_behavior_set st Cl.BEHAVIOR_BINARY_PROTOCOL 1 with
      | MEMCACHED_NOT_SUPPORTED _ -> ()
      | _ -> Alcotest.fail "strict mode must flag network behaviors")

let test_mget_callback_immediate () =
  on_both_backends (fun st ->
    ignore (Cl.memcached_set st "a" "1");
    ignore (Cl.memcached_set st "b" "2");
    let seen = ref [] in
    let rc =
      Cl.memcached_mget_execute st [ "a"; "missing"; "b" ]
        ~callback:(fun ~key ~value ~flags:_ ->
          seen := (key, value) :: !seen)
    in
    Alcotest.(check bool) "rc" true (rc = MEMCACHED_SUCCESS);
    Alcotest.(check (list (pair string string)))
      "callback saw exactly the hits, in order"
      [ ("a", "1"); ("b", "2") ]
      (List.rev !seen))

let test_socket_disconnect_raises () =
  incr fresh_id;
  let name = Printf.sprintf "client-dc-%d" !fresh_id in
  let vm = Vm.create () in
  ignore (Vm.spawn vm ~name:"main" (fun () ->
    let srv =
      Srv.start ~cfg:{ Mc_server.Server.default_config with workers = 1 }
        ~name ()
    in
    let c = Cl.Sock.connect ~name () in
    ignore (Cl.Sock.set c "k" "v");
    Srv.stop srv;
    (* the server is gone: the next op must fail loudly, not hang *)
    (match Cl.Sock.get c "k" with
     | _ -> Alcotest.fail "expected a connection failure"
     | exception Cl.Sock.T.Connection_closed -> ()
     | exception Vm.Sync.Closed -> ())));
  Vm.run vm

let test_direct_api () =
  incr fresh_id;
  let module RCl = Core.Client.Make (Platform.Real_sync) in
  let owner = Process.make ~uid:1000 "bk" in
  let plib =
    RCl.Plib.create
      ~path:(Printf.sprintf "/shm/direct-%d" !fresh_id)
      ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () -> Hodor.Library.release (RCl.Plib.library plib))
    (fun () ->
      (match RCl.Direct.get "k" with
       | _ -> Alcotest.fail "uninitialised Direct must raise"
       | exception RCl.Direct.Not_initialized -> ());
      RCl.Direct.memcached_init plib;
      Alcotest.(check bool) "set" true
        (RCl.Direct.set "k" "v" = Mc_core.Store.Stored);
      (match RCl.Direct.get "k" with
       | Some r -> Alcotest.(check string) "get" "v" r.Mc_core.Store.value
       | None -> Alcotest.fail "hit");
      Alcotest.(check bool) "incr" true
        (RCl.Direct.set "n" "1" = Mc_core.Store.Stored
         && RCl.Direct.incr "n" 1L = Mc_core.Store.Counter 2L);
      Alcotest.(check bool) "delete" true (RCl.Direct.delete "k");
      RCl.Direct.flush_all ();
      Alcotest.(check bool) "flushed" true (RCl.Direct.get "n" = None))

let () =
  Alcotest.run "client"
    [ ( "classic api",
        [ Alcotest.test_case "full equivalence on both backends" `Quick
            test_full_api_equivalence;
          Alcotest.test_case "behaviors / strict mode" `Quick
            test_behaviors_nop_vs_strict;
          Alcotest.test_case "mget immediate callback" `Quick
            test_mget_callback_immediate ] );
      ( "direct api",
        [ Alcotest.test_case "slim interface" `Quick test_direct_api ] );
      ( "failure paths",
        [ Alcotest.test_case "socket disconnect" `Quick
            test_socket_disconnect_raises ] ) ]
