(** Simulated OS: process identity, signals, the permission-checked
    file namespace. *)

module Process = Simos.Process
module Fs = Simos.Sim_fs

let test_process_identity () =
  let p = Process.make ~uid:1000 "client" in
  let q = Process.make ~uid:1000 "client2" in
  Alcotest.(check bool) "distinct pids" true (Process.pid p <> Process.pid q);
  Alcotest.(check int) "uid" 1000 (Process.uid p);
  Alcotest.(check int) "euid starts as uid" 1000 (Process.euid p);
  Alcotest.(check bool) "alive" true (Process.alive p)

let test_current_binding () =
  let p = Process.make ~uid:7 "me" in
  let observed =
    Process.with_process p (fun () -> Process.name (Process.current ()))
  in
  Alcotest.(check string) "bound" "me" observed;
  Alcotest.(check string) "restored" "init" (Process.name (Process.current ()))

let test_with_process_restores_on_exn () =
  let p = Process.make ~uid:7 "me" in
  (try Process.with_process p (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check string) "restored after exn" "init"
    (Process.name (Process.current ()))

let test_kill_and_check_alive () =
  let p = Process.make ~uid:1 "victim" in
  Process.with_process p (fun () -> Process.check_alive ());
  Process.kill ~now_ns:12345 p;
  Alcotest.(check bool) "dead" false (Process.alive p);
  Alcotest.(check (option int)) "kill time recorded" (Some 12345)
    (Process.killed_at p);
  (match Process.with_process p (fun () -> Process.check_alive ()) with
   | () -> Alcotest.fail "expected Process_killed"
   | exception Process.Process_killed _ -> ());
  (* double kill keeps the first timestamp *)
  Process.kill ~now_ns:99999 p;
  Alcotest.(check (option int)) "first kill wins" (Some 12345)
    (Process.killed_at p)

let test_library_call_accounting () =
  let p = Process.make ~uid:1 "c" in
  Alcotest.(check int) "zero" 0 (Process.in_library_calls p);
  Process.enter_library p;
  Process.enter_library p;
  Alcotest.(check int) "two" 2 (Process.in_library_calls p);
  Process.leave_library p;
  Alcotest.(check int) "one" 1 (Process.in_library_calls p)

let with_file ~owner ~mode f =
  let region = Shm.Region.create ~name:"f" ~size:4096 ~pkey:0 () in
  let path = Printf.sprintf "/test/file-%d" (Hashtbl.hash (owner, mode)) in
  Fs.create_file ~path ~owner ~mode region;
  Fun.protect ~finally:(fun () -> Fs.unlink path) (fun () -> f path region)

let test_fs_owner_access () =
  with_file ~owner:1000 ~mode:0o600 (fun path region ->
    let r = Fs.open_region ~euid:1000 ~write:true path in
    Alcotest.(check bool) "owner gets the region" true (r == region))

let test_fs_other_denied () =
  with_file ~owner:1000 ~mode:0o600 (fun path _ ->
    (match Fs.open_region ~euid:2000 path with
     | _ -> Alcotest.fail "expected Eacces"
     | exception Fs.Eacces _ -> ()))

let test_fs_other_readonly () =
  with_file ~owner:1000 ~mode:0o604 (fun path _ ->
    ignore (Fs.open_region ~euid:2000 ~write:false path);
    (match Fs.open_region ~euid:2000 ~write:true path with
     | _ -> Alcotest.fail "expected Eacces on write"
     | exception Fs.Eacces _ -> ()))

let test_fs_root_bypasses () =
  with_file ~owner:1000 ~mode:0o600 (fun path _ ->
    ignore (Fs.open_region ~euid:0 ~write:true path))

let test_fs_missing () =
  (match Fs.open_region ~euid:0 "/does/not/exist" with
   | _ -> Alcotest.fail "expected Enoent"
   | exception Fs.Enoent _ -> ())

let test_fs_metadata () =
  with_file ~owner:42 ~mode:0o640 (fun path _ ->
    Alcotest.(check int) "owner" 42 (Fs.owner path);
    Alcotest.(check int) "mode" 0o640 (Fs.mode path);
    Alcotest.(check bool) "exists" true (Fs.exists path))

let test_euid_changes_rights () =
  with_file ~owner:1000 ~mode:0o600 (fun path _ ->
    let p = Process.make ~uid:2000 "client" in
    Process.with_process p (fun () ->
      (match Fs.open_region ~euid:(Process.euid p) path with
       | _ -> Alcotest.fail "client euid must be denied"
       | exception Fs.Eacces _ -> ());
      (* the Hodor loader's euid dance *)
      Process.set_euid p 1000;
      ignore (Fs.open_region ~euid:(Process.euid p) ~write:true path);
      Process.set_euid p 2000))

let () =
  Alcotest.run "simos"
    [ ( "process",
        [ Alcotest.test_case "identity" `Quick test_process_identity;
          Alcotest.test_case "current binding" `Quick test_current_binding;
          Alcotest.test_case "binding restored on exn" `Quick
            test_with_process_restores_on_exn;
          Alcotest.test_case "kill / check_alive" `Quick
            test_kill_and_check_alive;
          Alcotest.test_case "library accounting" `Quick
            test_library_call_accounting ] );
      ( "filesystem",
        [ Alcotest.test_case "owner access" `Quick test_fs_owner_access;
          Alcotest.test_case "other denied" `Quick test_fs_other_denied;
          Alcotest.test_case "other read-only" `Quick test_fs_other_readonly;
          Alcotest.test_case "root bypass" `Quick test_fs_root_bypasses;
          Alcotest.test_case "missing file" `Quick test_fs_missing;
          Alcotest.test_case "metadata" `Quick test_fs_metadata;
          Alcotest.test_case "euid dance" `Quick test_euid_changes_rights ] ) ]
