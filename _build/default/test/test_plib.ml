(** The protected-library memcached itself: protection boundary,
    crash isolation, restart persistence — the paper's §3 claims. *)

module Cl = Core.Client.Make (Platform.Real_sync)
module Plib = Cl.Plib
module Process = Simos.Process
module Store = Mc_core.Store

let fresh_id = ref 0

(* The heap is sealed outside library calls; inspection runs as the
   "kernel side", like a debugger would. *)
let check_inv p =
  Shm.Region.kernel_mode (fun () -> Plib.Store.check_invariants (Plib.store p))

let with_plib ?protection ?copy_args ?store_cfg f =
  incr fresh_id;
  let owner = Process.make ~uid:1000 "memcached-bk" in
  let cfg =
    match store_cfg with
    | Some c -> c
    | None ->
      { Store.default_config with hashpower = 8; lock_count = 16;
        lru_count = 4; stats_slots = 4 }
  in
  let path = Printf.sprintf "/shm/plib-test-%d" !fresh_id in
  let p =
    Plib.create ?protection ?copy_args ~store_cfg:cfg ~path
      ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p))
    (fun () -> f p ~owner)

let test_basic_ops () =
  with_plib (fun p ~owner:_ ->
    Alcotest.(check bool) "set" true (Plib.set p "k" "v" = Store.Stored);
    (match Plib.get p "k" with
     | Some r -> Alcotest.(check string) "get" "v" r.Store.value
     | None -> Alcotest.fail "hit expected");
    Alcotest.(check bool) "incr path" true
      (Plib.set p "n" "1" = Store.Stored && Plib.incr p "n" 41L = Store.Counter 42L);
    Alcotest.(check bool) "delete" true (Plib.delete p "k");
    Alcotest.(check bool) "stats has curr_items" true
      (List.mem_assoc "curr_items" (Plib.stats p));
    check_inv p)

let test_region_protected_outside_calls () =
  with_plib (fun p ~owner:_ ->
    ignore (Plib.set p "k" "v");
    Pku.Pkru.reset_thread ();
    (* application code outside any library call: the heap is sealed *)
    (match Shm.Region.read_u8 (Plib.region p) 0 with
     | _ -> Alcotest.fail "expected Protection_fault outside the library"
     | exception Pku.Fault.Protection_fault _ -> ());
    (* the very same thread can use the data through the library *)
    Alcotest.(check bool) "library call works" true (Plib.get p "k" <> None))

let test_unprotected_mode_region_open () =
  with_plib ~protection:Plib.Unprotected (fun p ~owner:_ ->
    ignore (Plib.set p "k" "v");
    (* no pkey gating in the no-Hodor configuration *)
    ignore (Shm.Region.read_u8 (Plib.region p) 0))

let test_client_euid_dance () =
  with_plib (fun p ~owner:_ ->
    let client = Process.make ~uid:2000 "client-app" in
    (* direct open with the client's own euid is denied... *)
    (match
       Simos.Sim_fs.open_region ~euid:(Process.uid client) (Plib.path p)
     with
    | _ -> Alcotest.fail "client must not open the store file itself"
    | exception Simos.Sim_fs.Eacces _ -> ());
    (* ...but linking the library performs the owner-euid open *)
    Plib.open_client p ~process:client;
    Process.with_process client (fun () ->
      Alcotest.(check bool) "client operates through the library" true
        (Plib.set p "from-client" "hello" = Store.Stored)))

let test_copy_in_insulates_from_mutation () =
  with_plib (fun p ~owner:_ ->
    let data = Bytes.of_string "original-value" in
    ignore (Plib.set_raw p (Bytes.of_string "k") data);
    (* the client scribbles on its buffer after the call: the store
       must hold the snapshot *)
    Bytes.fill data 0 (Bytes.length data) 'X';
    match Plib.get p "k" with
    | Some r -> Alcotest.(check string) "snapshot" "original-value" r.Store.value
    | None -> Alcotest.fail "hit expected")

let test_kill_mid_call_preserves_store () =
  with_plib (fun p ~owner:_ ->
    ignore (Plib.set p "stable" "yes");
    let victim = Process.make ~uid:2000 "doomed" in
    Process.with_process victim (fun () ->
      match
        Hodor.Trampoline.call (Plib.library p) (fun () ->
          (* SIGKILL lands while this thread holds the store's locks
             conceptually; the call must complete *)
          Process.kill ~now_ns:(Hodor.Runtime.now_ns ()) victim;
          ignore
            (Plib.Store.set (Plib.store p) "from-dying-call" "done"))
      with
      | () -> Alcotest.fail "thread must die after completing the call"
      | exception Process.Process_killed _ -> ());
    (* the library survived: other processes keep working *)
    Alcotest.(check bool) "store intact" true (Plib.get p "stable" <> None);
    (match Plib.get p "from-dying-call" with
     | Some r ->
       Alcotest.(check string) "dying call's write persisted" "done"
         r.Store.value
     | None -> Alcotest.fail "the in-flight operation must have completed");
    check_inv p)

let test_crash_inside_library_poisons_store () =
  with_plib (fun p ~owner:_ ->
    (match
       Hodor.Trampoline.call (Plib.library p) (fun () -> failwith "wild ptr")
     with
    | () -> Alcotest.fail "expected failure"
    | exception Hodor.Trampoline.Library_call_failed _ -> ());
    (match Plib.get p "anything" with
     | _ -> Alcotest.fail "poisoned library must refuse calls"
     | exception Hodor.Library.Library_poisoned _ -> ()))

let test_shutdown_restart_preserves_data () =
  let disk = Filename.temp_file "plib" ".img" in
  incr fresh_id;
  let owner = Process.make ~uid:1000 "bk1" in
  let cfg =
    { Store.default_config with hashpower = 8; lock_count = 16; lru_count = 4;
      stats_slots = 4 }
  in
  let path = Printf.sprintf "/shm/plib-restart-%d" !fresh_id in
  let p = Plib.create ~store_cfg:cfg ~path ~size:(16 lsl 20) ~owner () in
  for i = 0 to 199 do
    ignore (Plib.set p ~flags:i (Printf.sprintf "key%d" i) (Printf.sprintf "value%d" i))
  done;
  ignore (Plib.delete p "key7");
  let cas_before = (Option.get (Plib.get p "key8")).Store.cas in
  Plib.shutdown p ~disk_path:disk;
  (* a new bookkeeping process maps the file: everything is found
     through the persistent roots, no rebuild code runs *)
  let owner2 = Process.make ~uid:1000 "bk2" in
  let p2 =
    Plib.restart ~store_cfg:cfg ~disk_path:disk ~path:(path ^ "-2")
      ~owner:owner2 ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink (path ^ "-2");
      Hodor.Library.release (Plib.library p2);
      Sys.remove disk)
    (fun () ->
      (match Plib.get p2 "key8" with
       | Some r ->
         Alcotest.(check string) "value survives" "value8" r.Store.value;
         Alcotest.(check int) "flags survive" 8 r.Store.flags
       | None -> Alcotest.fail "key8 must survive restart");
      Alcotest.(check (option string)) "deleted key stays deleted" None
        (Option.map (fun (r : Store.get_result) -> r.Store.value)
           (Plib.get p2 "key7"));
      Alcotest.(check int) "item count survives" 199
        (Shm.Region.kernel_mode (fun () ->
           Plib.Store.curr_items (Plib.store p2)));
      (* CAS continuity: new stores get fresh, larger uniques *)
      ignore (Plib.set p2 "key8" "rewritten");
      let cas_after = (Option.get (Plib.get p2 "key8")).Store.cas in
      Alcotest.(check bool) "cas continues upward" true
        (Int64.compare cas_after cas_before > 0);
      Shm.Region.kernel_mode (fun () ->
        Plib.Store.check_invariants (Plib.store p2)))

let test_maintain_enforces_watermark () =
  let cfg =
    { Store.default_config with hashpower = 8; lock_count = 16; lru_count = 4;
      stats_slots = 4 }
  in
  with_plib ~store_cfg:cfg (fun p ~owner:_ ->
    (* fill close to the 16MB heap *)
    let i = ref 0 in
    while
      float_of_int (Ralloc.used_bytes (Plib.heap p))
      < 0.97 *. float_of_int (Ralloc.capacity (Plib.heap p))
      && !i < 100_000
    do
      incr i;
      ignore (Plib.set p (Printf.sprintf "f%d" !i) (String.make 800 'f'))
    done;
    Plib.maintain p;
    let used = float_of_int (Ralloc.used_bytes (Plib.heap p)) in
    let cap = float_of_int (Ralloc.capacity (Plib.heap p)) in
    Alcotest.(check bool) "cleaner brought usage under the low watermark" true
      (used <= 0.91 *. cap);
    check_inv p)

let test_two_processes_share_one_store () =
  with_plib (fun p ~owner:_ ->
    let p1 = Process.make ~uid:2001 "app1" in
    let p2 = Process.make ~uid:2002 "app2" in
    Process.with_process p1 (fun () -> ignore (Plib.set p "shared" "from-app1"));
    Process.with_process p2 (fun () ->
      match Plib.get p "shared" with
      | Some r ->
        Alcotest.(check string) "app2 sees app1's write" "from-app1"
          r.Store.value
      | None -> Alcotest.fail "cross-process sharing broken"))

let test_in_vm_full_stack () =
  (* the same library code driven by simulated threads *)
  let module VCl = Core.Client.Make (Vm.Sync) in
  let owner = Process.make ~uid:1000 "bk-vm" in
  let plib =
    VCl.Plib.create ~path:"/shm/plib-vm-test" ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink "/shm/plib-vm-test";
      Hodor.Library.release (VCl.Plib.library plib))
    (fun () ->
      let vm = Vm.create () in
      let total = Atomic.make 0 in
      for t = 1 to 4 do
        ignore (Vm.spawn vm (fun () ->
          for i = 1 to 50 do
            let k = Printf.sprintf "t%d-%d" t i in
            assert (VCl.Plib.set plib k k = Store.Stored);
            assert (VCl.Plib.get plib k <> None);
            Atomic.incr total
          done))
      done;
      Vm.run vm;
      Alcotest.(check int) "all vm ops succeeded" 200 (Atomic.get total);
      Alcotest.(check bool) "virtual time advanced" true (Vm.now vm > 0);
      Shm.Region.kernel_mode (fun () ->
        VCl.Plib.Store.check_invariants (VCl.Plib.store plib)))

(* The hybrid deployment of §6: remote clients over sockets and local
   clients through trampolines, one shared store. *)
let test_hybrid_socket_and_local_share () =
  let module VCl = Core.Client.Make (Vm.Sync) in
  let owner = Process.make ~uid:1000 "bk-hybrid" in
  let plib =
    VCl.Plib.create ~path:"/shm/plib-hybrid" ~size:(16 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink "/shm/plib-hybrid";
      Hodor.Library.release (VCl.Plib.library plib))
    (fun () ->
      let vm = Vm.create () in
      ignore (Vm.spawn vm ~name:"main" (fun () ->
        let srv = VCl.Plib.serve_remote plib ~name:"hybrid-svc" in
        (* a "remote" client over the socket path *)
        let remote = VCl.Sock.connect ~name:"hybrid-svc" () in
        assert (VCl.Sock.set remote "via-socket" "remote-write"
                = Mc_core.Store.Stored);
        (* a local client through the trampoline sees it instantly *)
        (match VCl.Plib.get plib "via-socket" with
         | Some r -> assert (r.Mc_core.Store.value = "remote-write")
         | None -> assert false);
        (* and vice versa *)
        assert (VCl.Plib.set plib "via-hodor" "local-write"
                = Mc_core.Store.Stored);
        (match VCl.Sock.get remote "via-hodor" with
         | Some r -> assert (r.Mc_core.Store.value = "local-write")
         | None -> assert false);
        VCl.Plib.stop_remote srv));
      Vm.run vm;
      Shm.Region.kernel_mode (fun () ->
        VCl.Plib.Store.check_invariants (VCl.Plib.store plib)))

let test_plib_resize () =
  let cfg =
    { Store.default_config with hashpower = 4; lock_count = 8; lru_count = 2;
      stats_slots = 2 }
  in
  with_plib ~store_cfg:cfg (fun p ~owner:_ ->
    for i = 0 to 299 do
      ignore (Plib.set p (Printf.sprintf "r%d" i) "v")
    done;
    Alcotest.(check bool) "resized" true (Plib.maybe_resize p);
    for i = 0 to 299 do
      if Plib.get p (Printf.sprintf "r%d" i) = None then
        Alcotest.fail "key lost"
    done;
    check_inv p)

(* Deterministic fault injection inside the simulation: four simulated
   tenants hammer the store, one is SIGKILLed mid-run; everyone else
   finishes and the store's invariants hold. The VM makes the
   interleaving bit-reproducible. *)
let test_vm_fault_injection_deterministic () =
  let run () =
    let module VCl = Core.Client.Make (Vm.Sync) in
    incr fresh_id;
    let owner = Process.make ~uid:1000 "bk-fi" in
    let plib =
      VCl.Plib.create
        ~path:(Printf.sprintf "/shm/plib-fi-%d" !fresh_id)
        ~size:(16 lsl 20) ~owner ()
    in
    Fun.protect
      ~finally:(fun () -> Hodor.Library.release (VCl.Plib.library plib))
      (fun () ->
        let vm = Vm.create () in
        let finished = Atomic.make 0 in
        let killed = Atomic.make 0 in
        for i = 0 to 3 do
          ignore (Vm.spawn vm ~name:(Printf.sprintf "tenant%d" i) (fun () ->
            let proc = Process.make ~uid:(2000 + i) (Printf.sprintf "t%d" i) in
            Process.with_process proc (fun () ->
              try
                for j = 0 to 199 do
                  let k = Printf.sprintf "t%d-%d" i (j mod 17) in
                  (match j mod 3 with
                   | 0 -> ignore (VCl.Plib.set plib k k)
                   | 1 -> ignore (VCl.Plib.get plib k)
                   | _ -> ignore (VCl.Plib.delete plib k));
                  if i = 0 && j = 100 then
                    Process.kill ~now_ns:(Vm.Sync.now_ns ()) proc
                done;
                Atomic.incr finished
              with Process.Process_killed _ -> Atomic.incr killed)))
        done;
        Vm.run vm;
        Alcotest.(check int) "three tenants finished" 3 (Atomic.get finished);
        Alcotest.(check int) "one died" 1 (Atomic.get killed);
        Shm.Region.kernel_mode (fun () ->
          VCl.Plib.Store.check_invariants (VCl.Plib.store plib));
        Vm.events_processed vm)
  in
  let e1 = run () and e2 = run () in
  Alcotest.(check int) "fault injection is deterministic" e1 e2

(* Position independence end to end: the same heap image serves two
   mappings at different simulated base addresses, and the restart path
   finds all data regardless. *)
let test_position_independence_across_mappings () =
  let disk = Filename.temp_file "plib-pi" ".img" in
  incr fresh_id;
  let owner = Process.make ~uid:1000 "bk-pi" in
  let path = Printf.sprintf "/shm/plib-pi-%d" !fresh_id in
  let p = Plib.create ~path ~size:(16 lsl 20) ~owner () in
  ignore (Plib.set p "anchor" "still-here");
  Plib.shutdown p ~disk_path:disk;
  (* load the image twice: two independent "processes" with their own
     mappings at different bases *)
  let reg1 = Shm.Region.load ~path:disk in
  let reg2 = Shm.Region.load ~path:disk in
  let m1 = Shm.Mapping.map reg1 and m2 = Shm.Mapping.map reg2 in
  Alcotest.(check bool) "different virtual bases" true
    (Shm.Mapping.base m1 <> Shm.Mapping.base m2);
  List.iter
    (fun reg ->
      (* the image keeps its pkey tags, so inspection is kernel-side *)
      Shm.Region.kernel_mode (fun () ->
        let h = Ralloc.attach reg in
        let cell = Ralloc.get_root h Core.Plib_store.root_primary in
        let ctrl = Ralloc.Pptr.load reg ~at:cell in
        Alcotest.(check bool) "root resolves at any base" true (ctrl > 0)))
    [ reg1; reg2 ];
  (* and a full restart over one of them serves the data *)
  let owner2 = Process.make ~uid:1000 "bk-pi2" in
  let p2 = Plib.restart ~disk_path:disk ~path:(path ^ "-b") ~owner:owner2 () in
  Fun.protect
    ~finally:(fun () ->
      Hodor.Library.release (Plib.library p2);
      Sys.remove disk)
    (fun () ->
      match Plib.get p2 "anchor" with
      | Some r -> Alcotest.(check string) "data" "still-here" r.Store.value
      | None -> Alcotest.fail "anchor lost")

let () =
  Alcotest.run "plib"
    [ ( "operation",
        [ Alcotest.test_case "basic ops" `Quick test_basic_ops;
          Alcotest.test_case "two processes share" `Quick
            test_two_processes_share_one_store;
          Alcotest.test_case "vm full stack" `Quick test_in_vm_full_stack ] );
      ( "protection",
        [ Alcotest.test_case "sealed outside calls" `Quick
            test_region_protected_outside_calls;
          Alcotest.test_case "no-hodor leaves region open" `Quick
            test_unprotected_mode_region_open;
          Alcotest.test_case "euid dance" `Quick test_client_euid_dance;
          Alcotest.test_case "copy-in insulation" `Quick
            test_copy_in_insulates_from_mutation ] );
      ( "fault tolerance",
        [ Alcotest.test_case "kill mid-call" `Quick
            test_kill_mid_call_preserves_store;
          Alcotest.test_case "crash poisons" `Quick
            test_crash_inside_library_poisons_store ] );
      ( "lifecycle",
        [ Alcotest.test_case "shutdown/restart" `Quick
            test_shutdown_restart_preserves_data;
          Alcotest.test_case "cleaner watermark" `Quick
            test_maintain_enforces_watermark ] );
      ( "fault injection & PI",
        [ Alcotest.test_case "vm fault injection deterministic" `Quick
            test_vm_fault_injection_deterministic;
          Alcotest.test_case "position independence" `Quick
            test_position_independence_across_mappings ] );
      ( "extensions",
        [ Alcotest.test_case "hybrid socket+local" `Quick
            test_hybrid_socket_and_local_share;
          Alcotest.test_case "resize through plib" `Quick test_plib_resize ] ) ]
