(** Tests of the virtual-time machine: the benchmark results are only
    as trustworthy as this scheduler, so its semantics get the most
    detailed checks. *)

module S = Vm.Sync

let run_main f =
  let vm = Vm.create () in
  ignore (Vm.spawn vm ~name:"main" f);
  Vm.run vm;
  vm

let test_advance_accumulates () =
  let vm = run_main (fun () ->
    S.advance 100;
    S.advance 250;
    Alcotest.(check int) "clock" 350 (S.now_ns ()))
  in
  Alcotest.(check int) "final vnow" 350 (Vm.now vm)

let test_mutex_serializes () =
  let vm = Vm.create () in
  let m = S.mutex () in
  let in_cs = ref false in
  let overlaps = ref 0 in
  for _ = 1 to 4 do
    ignore (Vm.spawn vm (fun () ->
      for _ = 1 to 25 do
        S.lock m;
        if !in_cs then incr overlaps;
        in_cs := true;
        S.advance 100;
        in_cs := false;
        S.unlock m
      done))
  done;
  Vm.run vm;
  Alcotest.(check int) "no overlapping critical sections" 0 !overlaps;
  (* 4*25 sections x 100ns + handoff costs, fully serialised *)
  Alcotest.(check bool) "serialised time" true (Vm.now vm >= 10_000)

let test_unlock_not_owner_fails () =
  let vm = Vm.create () in
  let m = S.mutex () in
  ignore (Vm.spawn vm ~name:"bad" (fun () -> S.unlock m));
  (match Vm.run vm with
   | () -> Alcotest.fail "expected Thread_failure"
   | exception Vm.Thread_failure ("bad", Invalid_argument _) -> ()
   | exception e -> raise e)

let test_determinism () =
  let build () =
    let vm = Vm.create () in
    let m = S.mutex () in
    let c = S.chan ~cap:3 () in
    ignore (Vm.spawn vm ~name:"prod" (fun () ->
      for i = 1 to 50 do
        S.advance 7;
        S.send c i
      done;
      S.close c));
    for _ = 1 to 3 do
      ignore (Vm.spawn vm (fun () ->
        try
          while true do
            let v = S.recv c in
            S.lock m;
            S.advance (10 + (v mod 3));
            S.unlock m
          done
        with S.Closed -> ()))
    done;
    Vm.run vm;
    (Vm.now vm, Vm.events_processed vm)
  in
  let a = build () and b = build () in
  Alcotest.(check (pair int int)) "identical executions" a b

let test_chan_fifo_and_close () =
  let got = ref [] in
  ignore (run_main (fun () ->
    let c = S.chan ~cap:2 () in
    let recv =
      S.spawn ~name:"rx" (fun () ->
        try
          while true do
            got := S.recv c :: !got
          done
        with S.Closed -> ())
    in
    List.iter (fun v -> S.send c v) [ 1; 2; 3; 4; 5 ];
    S.close c;
    S.join recv));
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_send_blocks_on_full () =
  let vm = Vm.create () in
  let c = S.chan ~cap:1 () in
  let sent_at = ref 0 in
  ignore (Vm.spawn vm ~name:"tx" (fun () ->
    S.send c 1;
    S.send c 2 (* blocks until rx drains *);
    sent_at := S.now_ns ()));
  ignore (Vm.spawn vm ~name:"rx" (fun () ->
    S.advance 1_000;
    ignore (S.recv c);
    ignore (S.recv c)));
  Vm.run vm;
  Alcotest.(check bool) "second send waited for the slow receiver" true
    (!sent_at >= 1_000)

let test_recv_on_closed_raises () =
  ignore (run_main (fun () ->
    let c = S.chan () in
    S.send c 1;
    S.close c;
    Alcotest.(check int) "drains" 1 (S.recv c);
    (match S.recv c with
     | _ -> Alcotest.fail "expected Closed"
     | exception S.Closed -> ())))

let test_try_recv () =
  ignore (run_main (fun () ->
    let c = S.chan () in
    Alcotest.(check (option int)) "empty" None (S.try_recv c);
    S.send c 9;
    Alcotest.(check (option int)) "ready" (Some 9) (S.try_recv c)))

let test_deadlock_detected () =
  let vm = Vm.create () in
  let m1 = S.mutex () and m2 = S.mutex () in
  ignore (Vm.spawn vm ~name:"a" (fun () ->
    S.lock m1;
    S.advance 10;
    S.lock m2));
  ignore (Vm.spawn vm ~name:"b" (fun () ->
    S.lock m2;
    S.advance 10;
    S.lock m1));
  (match Vm.run vm with
   | () -> Alcotest.fail "expected Deadlock"
   | exception Vm.Deadlock _ -> ())

let test_join_waits () =
  ignore (run_main (fun () ->
    let child = S.spawn ~name:"worker" (fun () -> S.advance 5_000) in
    S.advance 10;
    S.join child;
    Alcotest.(check bool) "join folded the child's clock in" true
      (S.now_ns () >= 5_000)))

let test_sleep_is_not_cpu () =
  (* Two sleepers plus one busy thread on a 1-core machine: once the
     sleepers are parked they must not dilate the busy thread. The busy
     thread first sleeps briefly so the sleepers have left the runnable
     set when it starts computing. *)
  let vm = Vm.create ~config:Vm.Config.single_core () in
  let busy_end = ref 0 in
  ignore (Vm.spawn vm ~name:"busy" (fun () ->
    S.sleep_ns 10;
    S.advance 1_000;
    busy_end := S.now_ns ()));
  for _ = 1 to 2 do
    ignore (Vm.spawn vm (fun () -> S.sleep_ns 10_000))
  done;
  Vm.run vm;
  Alcotest.(check int) "no dilation from parked sleepers" 1_010 !busy_end

let test_dilation_beyond_capacity () =
  (* 30 CPU-bound threads on the default 10c/2smt machine share its
     peak capacity; serial work stretches accordingly. *)
  let vm = Vm.create () in
  for _ = 1 to 30 do
    ignore (Vm.spawn vm (fun () -> S.advance 12_000))
  done;
  Vm.run vm;
  let c = Vm.Config.default in
  let cap = float_of_int c.Vm.Config.cores *. c.Vm.Config.smt_throughput in
  let expect = int_of_float (30.0 *. 12_000.0 /. cap) in
  let got = Vm.now vm in
  Alcotest.(check bool)
    (Printf.sprintf "expected ~%d, got %d" expect got)
    true
    (abs (got - expect) * 100 < expect * 5)

let test_thread_failure_reported () =
  let vm = Vm.create () in
  ignore (Vm.spawn vm ~name:"boom" (fun () -> failwith "bang"));
  (match Vm.run vm with
   | () -> Alcotest.fail "expected failure"
   | exception Vm.Thread_failure ("boom", Failure _) -> ());
  Alcotest.(check int) "failure recorded" 1 (List.length (Vm.failures vm))

let test_tls_per_vthread () =
  let key = Tls.new_key (fun () -> ref 0) in
  let values = ref [] in
  let vm = Vm.create () in
  for i = 1 to 3 do
    ignore (Vm.spawn vm (fun () ->
      let cell = Tls.get key in
      cell := i * 10;
      S.advance 50;
      (* another thread ran meanwhile; our slot must be untouched *)
      values := !(Tls.get key) :: !values))
  done;
  Vm.run vm;
  Alcotest.(check (list int)) "each vthread kept its own slot"
    [ 30; 20; 10 ]
    (List.sort compare !values |> List.rev)

let test_spawn_inside () =
  ignore (run_main (fun () ->
    let acc = ref 0 in
    let children =
      List.init 5 (fun i -> S.spawn (fun () ->
        S.advance 10;
        acc := !acc + i))
    in
    List.iter S.join children;
    Alcotest.(check int) "children all ran" 10 !acc))

let test_yield_interleaves_equal_clocks () =
  let order = ref [] in
  let vm = Vm.create () in
  for i = 1 to 3 do
    ignore (Vm.spawn vm (fun () ->
      for round = 1 to 2 do
        order := (i, round) :: !order;
        S.yield ()
      done))
  done;
  Vm.run vm;
  (* yield at an equal clock hands the core to the peers: rounds
     interleave rather than each thread finishing both rounds first *)
  let first_three = List.rev !order |> fun l -> [ List.nth l 0; List.nth l 1; List.nth l 2 ] in
  Alcotest.(check (list (pair int int))) "round robin"
    [ (1, 1); (2, 1); (3, 1) ] first_three

let test_close_wakes_blocked_senders () =
  let vm = Vm.create () in
  let c = S.chan ~cap:1 () in
  let observed = ref `Nothing in
  ignore (Vm.spawn vm ~name:"tx" (fun () ->
    S.send c 1;
    match S.send c 2 with
    | () -> observed := `Sent
    | exception S.Closed -> observed := `Closed));
  ignore (Vm.spawn vm ~name:"closer" (fun () ->
    S.advance 100;
    S.close c));
  Vm.run vm;
  Alcotest.(check bool) "blocked sender saw Closed" true (!observed = `Closed)

let test_mean_runnable_tracks_load () =
  let vm = Vm.create () in
  for _ = 1 to 5 do
    ignore (Vm.spawn vm (fun () -> S.advance 10_000))
  done;
  Vm.run vm;
  let m = Vm.mean_runnable vm in
  Alcotest.(check bool)
    (Printf.sprintf "mean runnable %.1f ~ 5" m)
    true
    (m > 4.0 && m <= 5.01)

let test_sleep_ordering () =
  let order = ref [] in
  let vm = Vm.create () in
  ignore (Vm.spawn vm (fun () ->
    S.sleep_ns 300;
    order := 300 :: !order));
  ignore (Vm.spawn vm (fun () ->
    S.sleep_ns 100;
    order := 100 :: !order));
  ignore (Vm.spawn vm (fun () ->
    S.sleep_ns 200;
    order := 200 :: !order));
  Vm.run vm;
  Alcotest.(check (list int)) "wakes in deadline order" [ 100; 200; 300 ]
    (List.rev !order)

let test_run_not_reentrant () =
  let vm = Vm.create () in
  ignore (Vm.spawn vm (fun () -> ()));
  Vm.run vm;
  (* a second run on a drained machine is a no-op, not an error *)
  Vm.run vm;
  Alcotest.(check pass) "second run harmless" () ()

let test_deep_spawn_chain () =
  (* spawn-depth stress: each thread spawns the next; also exercises
     O(1) stack behaviour of the effect handler chain *)
  let vm = Vm.create () in
  let depth = 2_000 in
  let reached = ref 0 in
  let rec chain n () =
    reached := n;
    S.advance 1;
    if n < depth then ignore (S.spawn (chain (n + 1)))
  in
  ignore (Vm.spawn vm (chain 1));
  Vm.run vm;
  Alcotest.(check int) "all spawned" depth !reached

let test_long_advance_loop_constant_stack () =
  (* a million advances through the effect handler must not grow the
     stack (continue in tail position) *)
  let vm = Vm.create ~config:Vm.Config.single_core () in
  ignore (Vm.spawn vm (fun () ->
    for _ = 1 to 1_000_000 do
      S.advance 1
    done));
  Vm.run vm;
  Alcotest.(check int) "clock summed" 1_000_000 (Vm.now vm)

let qcheck_chan_preserves_content =
  QCheck.Test.make ~name:"channel transfers exactly its input"
    ~count:50
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (cap, xs) ->
      let vm = Vm.create () in
      let c = S.chan ~cap () in
      let got = ref [] in
      ignore (Vm.spawn vm (fun () ->
        List.iter (fun v -> S.send c v) xs;
        S.close c));
      ignore (Vm.spawn vm (fun () ->
        try
          while true do
            got := S.recv c :: !got
          done
        with S.Closed -> ()));
      Vm.run vm;
      List.rev !got = xs)

let () =
  Alcotest.run "vm"
    [ ( "scheduler",
        [ Alcotest.test_case "advance accumulates" `Quick
            test_advance_accumulates;
          Alcotest.test_case "mutex serializes" `Quick test_mutex_serializes;
          Alcotest.test_case "unlock by non-owner fails" `Quick
            test_unlock_not_owner_fails;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "join waits" `Quick test_join_waits;
          Alcotest.test_case "thread failure reported" `Quick
            test_thread_failure_reported;
          Alcotest.test_case "spawn inside" `Quick test_spawn_inside ] );
      ( "channels",
        [ Alcotest.test_case "fifo and close" `Quick test_chan_fifo_and_close;
          Alcotest.test_case "send blocks on full" `Quick
            test_send_blocks_on_full;
          Alcotest.test_case "recv on closed" `Quick test_recv_on_closed_raises;
          Alcotest.test_case "try_recv" `Quick test_try_recv;
          QCheck_alcotest.to_alcotest qcheck_chan_preserves_content ] );
      ( "machine model",
        [ Alcotest.test_case "sleep consumes no cpu" `Quick
            test_sleep_is_not_cpu;
          Alcotest.test_case "dilation beyond capacity" `Quick
            test_dilation_beyond_capacity;
          Alcotest.test_case "tls per vthread" `Quick test_tls_per_vthread;
          Alcotest.test_case "mean runnable" `Quick
            test_mean_runnable_tracks_load ] );
      ( "edge cases",
        [ Alcotest.test_case "yield interleaves" `Quick
            test_yield_interleaves_equal_clocks;
          Alcotest.test_case "close wakes senders" `Quick
            test_close_wakes_blocked_senders;
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "re-run harmless" `Quick test_run_not_reentrant;
          Alcotest.test_case "deep spawn chain" `Quick test_deep_spawn_chain;
          Alcotest.test_case "1M advances, O(1) stack" `Slow
            test_long_advance_loop_constant_stack ] ) ]
