(** YCSB load generator: drive a chosen backend with a configurable
    workload on the modeled machine and report latency/throughput.

    Examples:
      dune exec bin/loadgen.exe -- --backend plib --threads 8
      dune exec bin/loadgen.exe -- --backend socket --workers 4 \
          --threads 16 --reads 0.95 --value-size 5120 --ops 50000
      dune exec bin/loadgen.exe -- --backend plib-nohodor --threads 20 *)

module S = Vm.Sync
module Client = Core.Client.Make (Vm.Sync)
module Server = Mc_server.Server.Make (Vm.Sync)
module Run = Ycsb.Runner.Make (Vm.Sync)
module CM = Platform.Cost_model

type backend = Socket | Plib | Plib_nohodor

let in_vm f =
  let vm = Vm.create () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  Option.get !out

let run backend threads workers ops reads value_size records =
  let w =
    Ycsb.Workload.make ~name:"loadgen" ~record_count:records
      ~operation_count:ops ~read_proportion:reads ~field_length:value_size ()
  in
  let store_cfg =
    { Mc_core.Store.default_config with
      hashpower = max 10 (int_of_float (Float.log2 (float_of_int records)));
      lock_count = 1024; lru_count = 64; stats_slots = 64 }
  in
  let heap = max (256 lsl 20) (4 * records * (value_size + 128)) in
  let result =
    match backend with
    | Socket ->
      let arena = Mc_core.Private_memory.create ~limit:(2 * heap) in
      let slab = Mc_core.Slab.create ~arena ~mem_limit:heap in
      let store =
        Server.Store.create ~mem:arena ~alloc:slab
          { store_cfg with lru_by_size_class = true }
      in
      in_vm (fun () ->
        Run.load w
          { db_read = (fun k -> Server.Store.get store k <> None);
            db_update =
              (fun k v -> Server.Store.set store k v = Mc_core.Store.Stored) };
        let srv =
          Server.start
            ~cfg:{ Mc_server.Server.default_config with workers }
            ~prebuilt:store ~name:"loadgen" ()
        in
        let conns =
          Array.init threads (fun _ -> Client.Sock.connect ~name:"loadgen" ())
        in
        let db i =
          let c = conns.(i) in
          { Ycsb.Runner.db_read =
              (fun k ->
                S.advance CM.current.ycsb_driver;
                Client.Sock.get c k <> None);
            db_update =
              (fun k v ->
                S.advance CM.current.ycsb_driver;
                Client.Sock.set c k v = Mc_core.Store.Stored) }
        in
        let r = Run.run ~threads w ~db_for:db in
        Server.stop srv;
        r)
    | Plib | Plib_nohodor ->
      let protection =
        match backend with
        | Plib -> Hodor.Library.Protected
        | Plib_nohodor | Socket -> Hodor.Library.Unprotected
      in
      let owner = Simos.Process.make ~uid:1000 "loadgen-bk" in
      let plib =
        Client.Plib.create ~protection ~store_cfg ~path:"/dev/shm/loadgen-kv"
          ~size:heap ~owner ()
      in
      let db =
        { Ycsb.Runner.db_read =
            (fun k ->
              S.advance CM.current.ycsb_driver;
              Client.Plib.get plib k <> None);
          db_update =
            (fun k v ->
              S.advance CM.current.ycsb_driver;
              Client.Plib.set plib k v = Mc_core.Store.Stored) }
      in
      in_vm (fun () ->
        Run.load w db;
        Run.run ~threads w ~db_for:(fun _ -> db))
  in
  let h = result.Ycsb.Runner.r_hist in
  let p q = float_of_int (Ycsb.Histogram.percentile h q) /. 1e3 in
  Printf.printf "backend=%s threads=%d ops=%d reads=%.2f value=%dB records=%d\n"
    (match backend with
     | Socket -> Printf.sprintf "socket(workers=%d)" workers
     | Plib -> "plib"
     | Plib_nohodor -> "plib-nohodor")
    threads result.Ycsb.Runner.r_ops reads value_size records;
  Printf.printf "throughput: %.0f KTPS (virtual time %.2f ms)\n"
    (Ycsb.Runner.throughput_ktps result)
    (float_of_int result.Ycsb.Runner.r_elapsed_ns /. 1e6);
  Printf.printf "latency us: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
    (Ycsb.Histogram.mean h /. 1e3)
    (p 50.0) (p 95.0) (p 99.0)
    (float_of_int (Ycsb.Histogram.max_value h) /. 1e3);
  Printf.printf "hits: %d  misses: %d\n" result.Ycsb.Runner.r_hits
    result.Ycsb.Runner.r_misses

open Cmdliner

let backend_conv =
  Arg.enum
    [ ("socket", Socket); ("plib", Plib); ("plib-nohodor", Plib_nohodor) ]

let backend =
  Arg.(value & opt backend_conv Plib & info [ "backend"; "b" ] ~docv:"BACKEND")

let threads = Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N")

let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N")

let ops = Arg.(value & opt int 40_000 & info [ "ops" ] ~docv:"N")

let reads = Arg.(value & opt float 0.5 & info [ "reads" ] ~docv:"FRACTION")

let value_size = Arg.(value & opt int 128 & info [ "value-size" ] ~docv:"BYTES")

let records = Arg.(value & opt int 100_000 & info [ "records" ] ~docv:"N")

let cmd =
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"YCSB workload driver for the memcached reproduction")
    Term.(const run $ backend $ threads $ workers $ ops $ reads $ value_size
          $ records)

let () = exit (Cmd.eval cmd)
