bin/loadgen.mli:
