bin/loadgen.ml: Arg Array Cmd Cmdliner Core Float Hodor Mc_core Mc_server Option Platform Printf Simos Term Vm Ycsb
