bin/kv_shell.mli:
