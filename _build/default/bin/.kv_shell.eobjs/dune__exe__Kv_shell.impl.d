bin/kv_shell.ml: Arg Cmd Cmdliner Core In_channel Int64 List Mc_core Platform Printexc Printf Simos String Sys Term
