lib/platform/cost_model.ml:
