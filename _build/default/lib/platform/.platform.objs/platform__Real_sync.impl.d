lib/platform/real_sync.ml: Condition Mutex Queue Thread Unix
