lib/platform/sync_intf.ml:
