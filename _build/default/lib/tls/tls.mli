(** Pluggable thread-local storage.

    Libraries in this project (notably {!Pku}, whose pkru register is a
    per-thread value) need "the current thread's slot" to mean different
    things depending on the execution substrate:

    - under real OS threads, a slot per [Thread.t];
    - under the virtual-time machine ({!Vm}), a slot per {e simulated}
      thread, of which many share one OS thread.

    This module provides typed keys over a per-thread table, with a
    pluggable provider: the default provider keys tables by OS thread;
    the VM installs a provider that returns the running virtual thread's
    table while the simulation executes. *)

type table
(** A bag of thread-local values, owned by one (real or virtual) thread. *)

type 'a key
(** A typed slot name, usable across all threads. *)

val new_key : (unit -> 'a) -> 'a key
(** [new_key init] allocates a fresh slot; [init] runs lazily the first
    time a thread reads the slot. *)

val get : 'a key -> 'a
(** Current thread's value for the key, initialising it if absent. *)

val set : 'a key -> 'a -> unit
(** Set the current thread's value for the key. *)

val clear : 'a key -> unit
(** Drop the current thread's value; a later {!get} re-initialises. *)

val fresh_table : unit -> table
(** An empty table, for providers that manage their own threads. *)

val install_provider : (unit -> table) -> unit
(** Route {!get}/{!set} through [provider ()] instead of the OS-thread
    default. Used by the VM while a simulation runs. *)

val remove_provider : unit -> unit
(** Restore the OS-thread default provider. *)

val provider_installed : unit -> bool
(** True while a custom provider is routing lookups. *)
