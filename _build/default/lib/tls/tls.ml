type table = (int, Obj.t) Hashtbl.t

type 'a key = { id : int; init : unit -> 'a }

let next_key_id = Atomic.make 0

let new_key init = { id = Atomic.fetch_and_add next_key_id 1; init }

(* Default provider: one table per OS thread. Thread ids can be reused
   after a thread exits; a recycled id simply inherits a stale table,
   which is indistinguishable from a fresh one once every key's [init]
   is idempotent (they all are: keys hold no cross-thread state). *)
let default_tables : (int, table) Hashtbl.t = Hashtbl.create 64

let default_tables_lock = Mutex.create ()

let default_provider () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock default_tables_lock;
  let tbl =
    match Hashtbl.find_opt default_tables tid with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.add default_tables tid t;
      t
  in
  Mutex.unlock default_tables_lock;
  tbl

let provider : (unit -> table) option ref = ref None

let current_table () =
  match !provider with Some p -> p () | None -> default_provider ()

let fresh_table () : table = Hashtbl.create 8

let install_provider p = provider := Some p

let remove_provider () = provider := None

let provider_installed () = Option.is_some !provider

let get (k : 'a key) : 'a =
  let tbl = current_table () in
  match Hashtbl.find_opt tbl k.id with
  | Some v -> (Obj.obj v : 'a)
  | None ->
    let v = k.init () in
    Hashtbl.replace tbl k.id (Obj.repr v);
    v

let set (k : 'a key) (v : 'a) =
  Hashtbl.replace (current_table ()) k.id (Obj.repr v)

let clear (k : 'a key) = Hashtbl.remove (current_table ()) k.id
