lib/core/socket_client.ml: List Mc_core Mc_protocol Option Platform Transport
