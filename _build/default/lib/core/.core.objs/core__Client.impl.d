lib/core/client.ml: Errors Hashtbl List Mc_core Platform Plib_store Socket_client
