lib/core/errors.ml:
