lib/core/plib_store.ml: Atomic Bytes Hodor Mc_core Mc_server Platform Ralloc Shm Simos
