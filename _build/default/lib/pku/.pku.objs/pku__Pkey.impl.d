lib/pku/pkey.ml: Array Format Mutex
