lib/pku/pkru.mli: Format Pkey
