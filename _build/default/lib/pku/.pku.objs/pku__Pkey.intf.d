lib/pku/pkey.mli: Format
