lib/pku/debug_regs.ml: List
