lib/pku/insn.ml: Array List
