lib/pku/fault.ml: Printf
