lib/pku/pkru.ml: Format Pkey Tls
