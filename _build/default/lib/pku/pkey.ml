(** Protection keys (PKU associates one of 16 keys with each page).

    Key 0 is the conventional "unrestricted" key that tags ordinary
    memory; keys 1-15 are allocatable, mirroring Linux's
    [pkey_alloc(2)] interface. *)

type t = int

let count = 16

let default : t = 0

exception Out_of_keys

let allocated = Array.make count false

let () = allocated.(0) <- true

let alloc_lock = Mutex.create ()

let alloc () : t =
  Mutex.lock alloc_lock;
  let rec find i =
    if i >= count then begin
      Mutex.unlock alloc_lock;
      raise Out_of_keys
    end
    else if not allocated.(i) then begin
      allocated.(i) <- true;
      Mutex.unlock alloc_lock;
      i
    end
    else find (i + 1)
  in
  find 1

let free (k : t) =
  if k <= 0 || k >= count then invalid_arg "Pkey.free";
  Mutex.lock alloc_lock;
  allocated.(k) <- false;
  Mutex.unlock alloc_lock

let is_valid (k : t) = k >= 0 && k < count

let pp fmt (k : t) = Format.fprintf fmt "pkey%d" k
