(** The per-thread pkru register: 32 bits, two per key — bit [2k] is
    access-disable, bit [2k+1] write-disable, exactly as on Intel
    hardware. Thread-local; under the virtual-time machine each
    {e simulated} thread has its own copy (via {!Tls}).

    This module is the raw register; the policy of who may execute
    [wrpkru] is enforced by the loader's scan and {!Debug_regs}. *)

type perm = Enable | Write_disable | Access_disable

type t = int

val init_value : t
(** Linux's initial pkru: everything but key 0 access-disabled. *)

val all_enabled : t

val read : unit -> t
(** The calling thread's register. *)

val wrpkru : t -> unit
(** The raw register write (trusted callers only: trampolines, tests,
    the loader's interpreter). *)

val reset_thread : unit -> unit

val set_perm : t -> Pkey.t -> perm -> t
(** A new value with [key]'s two bits set for [perm]; other keys
    untouched. *)

val perm_of : t -> Pkey.t -> perm

val allows_read : t -> Pkey.t -> bool

val allows_write : t -> Pkey.t -> bool

val pp : Format.formatter -> t -> unit
