(** A miniature binary model, just rich enough for Hodor's loader
    story: binaries are arrays of opcodes; the loader scans them for
    stray [wrpkru] occurrences outside trampolines and plants hardware
    breakpoints (or flips page permissions when it runs out of
    breakpoint registers). *)

type t =
  | Wrpkru of int  (** attempt to write this value into pkru *)
  | Compute of int  (** [n] ns of ordinary computation *)
  | Call of string  (** call into a named (library) symbol *)
  | Ret

type binary = {
  binary_name : string;
  text : t array;  (** index = address *)
  trampoline_addrs : int list;
  (** addresses of loader-installed trampolines, where [Wrpkru] is
      legitimate *)
}

let make ?(trampolines = []) name text =
  { binary_name = name; text; trampoline_addrs = trampolines }

(* All addresses holding a [Wrpkru] opcode that is NOT part of a
   trampoline: these are the strays the loader must neutralise. *)
let stray_wrpkru_addrs (b : binary) : int list =
  let strays = ref [] in
  Array.iteri
    (fun addr insn ->
      match insn with
      | Wrpkru _ when not (List.mem addr b.trampoline_addrs) ->
        strays := addr :: !strays
      | Wrpkru _ | Compute _ | Call _ | Ret -> ())
    b.text;
  List.rev !strays
