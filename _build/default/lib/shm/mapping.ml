(** A per-process view of a shared region.

    Real processes mmap the heap file wherever their address space has
    room, so the same object lives at a different virtual address in
    every process — the reason the paper needs Ralloc's
    position-independent [pptr]s. We reproduce that: each mapping gets
    a distinct base "address", and anything that crosses a process
    boundary must travel as a region offset (or as a pptr within the
    region), never as a mapped address. Tests use {!off_of_addr} /
    {!addr_of_off} to prove position independence across remaps. *)

type t = { region : Region.t; base : int }

let next_base = Atomic.make 0x7f00_0000_0000

(* Space mappings well apart and unpredictably, like ASLR would. *)
let fresh_base () =
  let n = Atomic.fetch_and_add next_base 1 in
  0x7f00_0000_0000 + (n land 0xffff) * 0x10_0000_0000
  + (((n * 2654435761) land 0xff) * Region.page_size)

let map ?base region =
  let base = match base with Some b -> b | None -> fresh_base () in
  if base mod Region.page_size <> 0 then
    invalid_arg "Mapping.map: base must be page-aligned";
  { region; base }

let region t = t.region

let base t = t.base

let addr_of_off t off =
  if off < 0 || off >= Region.size t.region then
    invalid_arg "Mapping.addr_of_off: offset out of region";
  t.base + off

let off_of_addr t addr =
  let off = addr - t.base in
  if off < 0 || off >= Region.size t.region then
    invalid_arg "Mapping.off_of_addr: address not in this mapping";
  off

let contains t addr = addr >= t.base && addr - t.base < Region.size t.region
