(** A per-process view of a shared region.

    Real processes mmap the heap file wherever their address space has
    room, so the same object lives at a different virtual address in
    every process — the reason the paper needs Ralloc's
    position-independent pptrs. Each mapping gets a distinct base
    "address"; anything crossing a process boundary must travel as a
    region offset, never as a mapped address. *)

type t

val map : ?base:int -> Region.t -> t
(** Map the region at [base] (page-aligned), or at a fresh
    ASLR-flavoured base. *)

val region : t -> Region.t

val base : t -> int

val addr_of_off : t -> int -> int
(** Raises [Invalid_argument] outside the region. *)

val off_of_addr : t -> int -> int
(** Raises [Invalid_argument] for an address not in this mapping. *)

val contains : t -> int -> bool
