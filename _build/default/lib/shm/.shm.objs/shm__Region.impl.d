lib/shm/region.ml: Array Atomic Bytes Char Format Fun Int32 Int64 Marshal Pku Printf String Tls
