lib/shm/mapping.mli: Region
