lib/shm/region.mli: Atomic Pku
