lib/shm/mapping.ml: Atomic Region
