lib/mc_server/server.ml: Array Buffer Char Executor Hashtbl List Mc_core Mc_protocol Mutex Platform Printf Store String Transport
