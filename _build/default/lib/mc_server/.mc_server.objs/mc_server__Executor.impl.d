lib/mc_server/executor.ml: List Mc_core Mc_protocol Platform
