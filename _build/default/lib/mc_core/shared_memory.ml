(** {!Memory_intf.MEMORY} over a shared {!Shm.Region}, with
    position-independent pointer cells (Ralloc pptrs): what the
    protected-library store runs on. Every access is pkru-checked by
    the region. *)

module Region = Shm.Region

type t = Region.t

let of_region r = r

let read_u8 = Region.read_u8

let write_u8 = Region.write_u8

let read_i32 = Region.read_i32

let write_i32 = Region.write_i32

let read_i64 = Region.read_i64

let write_i64 = Region.write_i64

let load_ptr (r : t) ~at = Ralloc.Pptr.load r ~at

let store_ptr (r : t) ~at v = Ralloc.Pptr.store r ~at v

let read_string (r : t) ~off ~len = Region.read_string r ~off ~len

let write_string (r : t) ~off s = Region.write_string r ~off s

let equal_string (r : t) ~off ~len s = Region.equal_string r ~off ~len s
