(** MurmurHash3 (x86, 32-bit), the hash memcached uses for its table.
    Pure int arithmetic masked to 32 bits. *)

let mask32 = 0xFFFFFFFF

let rotl32 x r = ((x lsl r) lor (x lsr (32 - r))) land mask32

let mul32 a b = a * b land mask32

let c1 = 0xcc9e2d51

let c2 = 0x1b873593

let murmur3_32 ?(seed = 0) (key : string) : int =
  let len = String.length key in
  let h = ref (seed land mask32) in
  let nblocks = len / 4 in
  for i = 0 to nblocks - 1 do
    let j = 4 * i in
    let k =
      Char.code key.[j]
      lor (Char.code key.[j + 1] lsl 8)
      lor (Char.code key.[j + 2] lsl 16)
      lor (Char.code key.[j + 3] lsl 24)
    in
    let k = mul32 k c1 in
    let k = rotl32 k 15 in
    let k = mul32 k c2 in
    h := !h lxor k;
    h := rotl32 !h 13;
    h := (mul32 !h 5 + 0xe6546b64) land mask32
  done;
  let tail = nblocks * 4 in
  let k = ref 0 in
  if len land 3 >= 3 then k := !k lxor (Char.code key.[tail + 2] lsl 16);
  if len land 3 >= 2 then k := !k lxor (Char.code key.[tail + 1] lsl 8);
  if len land 3 >= 1 then begin
    k := !k lxor Char.code key.[tail];
    k := mul32 !k c1;
    k := rotl32 !k 15;
    k := mul32 !k c2;
    h := !h lxor !k
  end;
  h := !h lxor len;
  h := !h lxor (!h lsr 16);
  h := mul32 !h 0x85ebca6b;
  h := !h lxor (!h lsr 13);
  h := mul32 !h 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  !h land mask32
