(** {!Memory_intf.ALLOCATOR} over a Ralloc heap: the protected-library
    store's allocator. *)

type t = Ralloc.t

let of_heap h = h

let alloc (t : t) size =
  match Ralloc.alloc t size with
  | off -> off
  | exception Ralloc.Out_of_heap -> 0

let free = Ralloc.free

let usable_size = Ralloc.usable_size

let used_bytes = Ralloc.used_bytes

let capacity = Ralloc.capacity
