lib/mc_core/slab.mli: Private_memory
