lib/mc_core/ralloc_alloc.ml: Ralloc
