lib/mc_core/memory_intf.ml:
