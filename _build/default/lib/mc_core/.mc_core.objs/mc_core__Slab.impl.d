lib/mc_core/slab.ml: Array Hashtbl List Mutex Private_memory
