lib/mc_core/shared_memory.ml: Ralloc Shm
