lib/mc_core/hash.ml: Char String
