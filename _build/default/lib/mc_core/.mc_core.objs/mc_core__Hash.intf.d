lib/mc_core/hash.mli:
