lib/mc_core/store.mli: Memory_intf Platform
