lib/mc_core/store.ml: Array Atomic Char Fun Hash Int64 List Memory_intf Platform Printf Slab Stdlib String
