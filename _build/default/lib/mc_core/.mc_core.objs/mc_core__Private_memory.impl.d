lib/mc_core/private_memory.ml: Bytes Char Int32 Int64 String
