(** MurmurHash3 (x86, 32-bit), the hash memcached uses for its table. *)

val murmur3_32 : ?seed:int -> string -> int
(** 32-bit hash of the key, in [0, 2^32). Pure, allocation-free. *)
