(** The modified (trusted) loader (paper §2, §3.3): scans binaries for
    stray [wrpkru] opcodes, arms hardware breakpoints (falling back to
    page gating past four), and runs library initialisation with the
    owner's effective uid. *)

type report = {
  strays_found : int;
  breakpoints : int;
  pages_gated : int;
}

val scan_and_arm : Pku.Debug_regs.t -> Pku.Insn.binary -> report

val init_library : Library.t -> store_path:string -> Shm.Region.t
(** Open the library's backing store file under the {e owner's}
    effective uid (the §3.3 euid dance), run the library's init
    routine, revert the euid, and return the mapped region.
    @raise Simos.Sim_fs.Eacces if even the owner may not open it. *)

val exec : Pku.Debug_regs.t -> Library.t -> Pku.Insn.binary -> unit
(** Interpret a pseudo-binary: [Call]s go through trampolines; a
    [Wrpkru] at a breakpointed or gated address raises
    {!Pku.Fault.Breakpoint_trap}; on an unscanned binary it executes —
    the attack the loader exists to stop. *)
