lib/hodor/loader.ml: Array Fun Library List Pku Runtime Shm Simos Trampoline
