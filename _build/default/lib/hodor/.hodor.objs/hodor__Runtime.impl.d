lib/hodor/runtime.ml: Unix
