lib/hodor/loader.mli: Library Pku Shm
