lib/hodor/trampoline.ml: Bytes Library List Pku Platform Printexc Printf Runtime Simos Tls
