lib/hodor/trampoline.mli: Library
