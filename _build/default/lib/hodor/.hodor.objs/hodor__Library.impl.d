lib/hodor/library.ml: Hashtbl Obj Option Pku Shm
