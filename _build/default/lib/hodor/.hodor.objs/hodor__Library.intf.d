lib/hodor/library.mli: Pku Shm
