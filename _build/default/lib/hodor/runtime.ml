(** Execution-substrate hooks for Hodor.

    Hodor sits below the store code and cannot be a functor over
    {!Platform.Sync_intf.S} without dragging the functor through every
    client; instead the two mode-dependent operations — charging
    modeled CPU cost and reading the clock — are installed here by
    whoever sets the mode up (benchmarks install the VM's; the default
    suits real-thread mode). *)

let advance_hook : (int -> unit) ref = ref ignore

let now_hook : (unit -> int) ref =
  ref (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))

let configure ~advance ~now =
  advance_hook := advance;
  now_hook := now

let reset () =
  advance_hook := ignore;
  now_hook := (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))

let advance n = !advance_hook n

let now_ns () = !now_hook ()
