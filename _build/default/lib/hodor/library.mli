(** A Hodor protected library: code granted amplified access rights to
    a set of protected regions while (and only while) a thread executes
    inside it (paper §2). *)

type protection =
  | Protected  (** full Hodor: pkru gating + trampoline cost *)
  | Unprotected
  (** the paper's "Plib, No Hodor" configuration: same code, direct
      calls, no pkru switching — slightly faster, not safe *)

type t

exception Library_poisoned of string
(** Raised on calls into a library that crashed during an earlier call;
    as in the paper, such a crash is unrecoverable for the store. *)

val default_grace_ns : int

val create :
  ?protection:protection ->
  ?grace_ns:int ->
  ?copy_args:bool ->
  name:string ->
  owner_uid:int ->
  unit ->
  t
(** Allocates a protection key for [Protected] libraries. [grace_ns]
    bounds how long an in-library call of a killed process may keep
    running; [copy_args] enables trampoline-level argument copying
    (off by default, as in the paper — see ablation abl3). *)

val name : t -> string

val pkey : t -> Pku.Pkey.t

val protection : t -> protection

val owner_uid : t -> int

val grace_ns : t -> int

val copy_args : t -> bool

val protect_region : t -> Shm.Region.t -> unit
(** Tag every page of the region with the library's key: from now on
    only threads inside the library can touch it. *)

val regions : t -> Shm.Region.t list

val set_init : t -> (unit -> unit) -> unit
(** Initialisation routine the loader runs before main, under the
    owner's effective uid. *)

val init_fn : t -> (unit -> unit) option

val poison : t -> string -> unit

val poisoned : t -> string option

val check_poisoned : t -> unit
(** @raise Library_poisoned if the library has crashed. *)

val export : t -> entry:string -> (unit -> unit) -> unit
(** Register a named entry point for the loader's binary interpreter. *)

val find_export : t -> string -> (unit -> unit) option

val release : t -> unit
(** Return the protection key and drop the protected regions. *)
