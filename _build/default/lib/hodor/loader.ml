(** The modified (trusted) loader.

    Responsibilities, as in the paper (§2, §3.3):
    - scan an about-to-run binary for stray [wrpkru] opcodes and plant
      hardware breakpoints on them; past four strays (the number of
      debug registers) fall back to gating the containing pages;
    - run each linked protected library's initialisation routine
      {e before main}, with the effective uid of the library's owner,
      so the library can open its backing store file even though the
      client's own uid could not (§3.3's euid dance);
    - install trampolines for the library's entry points (modeled by
      {!Trampoline}). *)

module Process = Simos.Process

type report = {
  strays_found : int;
  breakpoints : int;
  pages_gated : int;
}

let scan_and_arm (dr : Pku.Debug_regs.t) (b : Pku.Insn.binary) : report =
  let strays = Pku.Insn.stray_wrpkru_addrs b in
  let bps = ref 0 and gated = ref 0 in
  List.iter
    (fun addr ->
      match Pku.Debug_regs.install dr ~binary:b.Pku.Insn.binary_name ~addr with
      | () -> incr bps
      | exception Pku.Debug_regs.Exhausted ->
        let page = Pku.Debug_regs.page_of_addr addr in
        Pku.Debug_regs.gate_page dr ~binary:b.Pku.Insn.binary_name ~page;
        incr gated)
    strays;
  { strays_found = List.length strays; breakpoints = !bps;
    pages_gated = !gated }

(* Library initialisation with the owner's effective uid: open the
   store's backing file as the owner, run init, revert. The client
   process never holds the rights itself. *)
let init_library (lib : Library.t) ~store_path =
  let p = Process.current () in
  let saved = Process.euid p in
  Process.set_euid p (Library.owner_uid lib);
  Fun.protect
    ~finally:(fun () -> Process.set_euid p saved)
    (fun () ->
      let region =
        Simos.Sim_fs.open_region ~euid:(Process.euid p) ~write:true store_path
      in
      (match Library.init_fn lib with
       | Some f -> Shm.Region.kernel_mode f
       | None -> ());
      region)

(* Minimal interpreter over pseudo-binaries: runs application "text",
   demonstrating that a stray wrpkru traps while trampoline-mediated
   calls work. Used by tests and the security example. *)
let exec (dr : Pku.Debug_regs.t) (lib : Library.t) (b : Pku.Insn.binary) =
  Array.iteri
    (fun addr insn ->
      match insn with
      | Pku.Insn.Compute n -> Runtime.advance n
      | Pku.Insn.Ret -> ()
      | Pku.Insn.Call entry ->
        (match Library.find_export lib entry with
         | Some f -> Trampoline.call lib f
         | None -> failwith ("unresolved symbol: " ^ entry))
      | Pku.Insn.Wrpkru v ->
        if Pku.Debug_regs.trips dr ~binary:b.Pku.Insn.binary_name ~addr then
          Pku.Fault.breakpoint_trap
            "%s+%d: stray wrpkru trapped by loader breakpoint"
            b.Pku.Insn.binary_name addr
        else if List.mem addr b.Pku.Insn.trampoline_addrs then
          (* a legitimate trampoline site *)
          Pku.Pkru.wrpkru v
        else
          (* unscanned binary: the attack the loader exists to stop *)
          Pku.Pkru.wrpkru v)
    b.Pku.Insn.text
