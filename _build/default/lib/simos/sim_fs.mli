(** A tiny simulated file system holding shared-region "files" with
    Unix-style owner and permission bits — the surface Hodor's
    file-permission story (§3.3) is checked against: the store file is
    owned by the bookkeeping uid with mode 0o600, and only the loader's
    euid dance lets clients use it. *)

exception Eacces of string

exception Enoent of string

val create_file : path:string -> owner:int -> mode:int -> Shm.Region.t -> unit

val open_region : euid:int -> ?write:bool -> string -> Shm.Region.t
(** Permission-checked open with the caller's {e effective} uid; root
    (euid 0) bypasses.
    @raise Eacces on denial, @raise Enoent for missing paths. *)

val exists : string -> bool

val unlink : string -> unit

val owner : string -> int

val mode : string -> int

val reset : unit -> unit
(** Drop every entry (test isolation). *)
