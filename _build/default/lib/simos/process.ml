(** Simulated OS processes.

    A "process" here is an identity — pid, uid/euid, liveness — that
    threads (real or virtual) bind to with {!with_process}. It gives
    the reproduction the parts of process semantics the paper depends
    on:

    - distinct uids, so Hodor's file-permission story (the library
      initialisation runs with the bookkeeping process's effective uid)
      is testable;
    - independent failure: {!kill} marks a process dead; its threads
      observe that at cancellation points ({!check_alive}) — except
      while inside a protected-library call, which Hodor lets run to
      completion (that exception is implemented in {!Hodor}, which
      consults {!set_in_library}/{!killed_at}). *)

type status = Running | Killed of string | Exited

type t = {
  pid : int;
  pname : string;
  uid : int;
  mutable euid : int;
  mutable status : status;
  mutable killed_at_ns : int option;
  in_library : int Atomic.t;  (** threads currently inside a protected call *)
}

exception Process_killed of string
(** Raised at a cancellation point of a thread whose process died. *)

let next_pid = Atomic.make 1

let make ?(uid = 0) name =
  { pid = Atomic.fetch_and_add next_pid 1; pname = name; uid; euid = uid;
    status = Running; killed_at_ns = None; in_library = Atomic.make 0 }

let init_process = make ~uid:0 "init"

let current_key = Tls.new_key (fun () -> ref init_process)

let current () = !(Tls.get current_key)

let with_process p f =
  let cell = Tls.get current_key in
  let saved = !cell in
  cell := p;
  Fun.protect ~finally:(fun () -> cell := saved) f

let pid t = t.pid

let name t = t.pname

let uid t = t.uid

let euid t = t.euid

let set_euid t e = t.euid <- e

let alive t = t.status = Running

let status t = t.status

let kill ?(signal = "SIGKILL") ~now_ns t =
  if t.status = Running then begin
    t.status <- Killed signal;
    t.killed_at_ns <- Some now_ns
  end

let exit t = if t.status = Running then t.status <- Exited

let killed_at t = t.killed_at_ns

(* Library-call accounting, used by Hodor's completion guarantee. *)

let enter_library t = Atomic.incr t.in_library

let leave_library t = Atomic.decr t.in_library

let in_library_calls t = Atomic.get t.in_library

(* A cancellation point: ordinary (non-library) code of a dead process
   stops here. Hodor-protected code never calls this while holding
   library state; it checks only at trampoline exit. *)
let check_alive () =
  let p = current () in
  match p.status with
  | Running -> ()
  | Killed s -> raise (Process_killed (Printf.sprintf "%s: %s" p.pname s))
  | Exited -> raise (Process_killed (p.pname ^ ": exited"))
