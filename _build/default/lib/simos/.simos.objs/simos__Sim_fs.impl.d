lib/simos/sim_fs.ml: Hashtbl Mutex Printf Shm
