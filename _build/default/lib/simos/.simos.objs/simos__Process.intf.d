lib/simos/process.mli:
