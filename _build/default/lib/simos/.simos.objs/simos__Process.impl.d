lib/simos/process.ml: Atomic Fun Printf Tls
