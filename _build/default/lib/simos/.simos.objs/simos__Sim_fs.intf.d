lib/simos/sim_fs.mli: Shm
