lib/transport/sock.ml: Atomic Hashtbl Mutex Obj Platform String
