(** YCSB's Zipfian generators (Gray et al.'s algorithm, as implemented
    in com.yahoo.ycsb.generator.ZipfianGenerator), plus the scrambled
    variant that spreads the popular items across the keyspace. The
    paper's workloads draw keys "with a Zipfian distribution" via
    YCSB, i.e. the scrambled form. *)

let default_theta = 0.99

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2theta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = default_theta) n =
  if n <= 0 then invalid_arg "Zipfian.create";
  let zetan = zeta n theta in
  let zeta2theta = zeta 2 theta in
  { n; theta; alpha = 1.0 /. (1.0 -. theta); zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2theta /. zetan));
    zeta2theta }

let next t rng =
  let u = Rng.next_float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    min (t.n - 1) (int_of_float v)

(* FNV-1a 64-bit, YCSB's scrambling hash. *)
let fnv64 v =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * shift)) land 0xff in
    h := Int64.logxor !h (Int64.of_int byte);
    h := Int64.mul !h prime
  done;
  !h

let next_scrambled t rng =
  let z = next t rng in
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical (fnv64 (Int64.of_int z)) 1)
       (Int64.of_int t.n))
