(** Position of the most significant set bit of a positive int.
    Uses [frexp], exact for values below 2^53 — far beyond any
    nanosecond latency this project records. *)

let msb v =
  if v <= 0 then invalid_arg "Bits.msb";
  snd (Float.frexp (float_of_int v)) - 1

let clz v = 62 - msb v
