lib/ycsb/histogram.ml: Array Bits Float
