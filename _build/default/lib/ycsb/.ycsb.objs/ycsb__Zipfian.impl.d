lib/ycsb/zipfian.ml: Float Int64 Rng
