lib/ycsb/bits.ml: Float
