lib/ycsb/rng.ml: Int64
