lib/ycsb/workload.ml: Bytes Printf Rng String Zipfian
