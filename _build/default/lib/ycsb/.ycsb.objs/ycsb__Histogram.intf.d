lib/ycsb/histogram.mli:
