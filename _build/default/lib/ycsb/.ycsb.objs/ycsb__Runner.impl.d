lib/ycsb/runner.ml: Array Histogram List Platform Printf Rng Workload
