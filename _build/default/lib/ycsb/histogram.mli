(** Log-scale latency histogram (HdrHistogram-style: 32 sub-buckets
    per power of two, ~3% value resolution), for per-operation
    nanosecond latencies. *)

type t

val create : unit -> t

val record : t -> int -> unit

val merge : into:t -> t -> unit

val count : t -> int

val mean : t -> float

val min_value : t -> int

val max_value : t -> int

val percentile : t -> float -> int
(** [percentile t 99.0] — never exceeds {!max_value}; bucket-midpoint
    resolution (~3-4%). *)
