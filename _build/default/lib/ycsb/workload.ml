(** YCSB workload definitions.

    The paper's evaluation (§4) uses four custom workloads crossing
    value sizes {128 B, 5 KB} with read/write mixes {95/5 ("read
    heavy"), 50/50 ("write heavy")}, Zipfian key choice, 4x10^7 keys
    for the small values and 10^6 for the large (equal total
    footprint), and 10^6 operations. *)

type distribution = Uniform | Zipfian | Scrambled_zipfian

type t = {
  name : string;
  record_count : int;
  operation_count : int;
  read_proportion : float;  (** remainder is updates *)
  field_length : int;  (** value size in bytes *)
  distribution : distribution;
  seed : int;
}

let make ?(name = "custom") ?(distribution = Scrambled_zipfian) ?(seed = 42)
    ~record_count ~operation_count ~read_proportion ~field_length () =
  if read_proportion < 0.0 || read_proportion > 1.0 then
    invalid_arg "Workload.make: read_proportion";
  { name; record_count; operation_count; read_proportion; field_length;
    distribution; seed }

(* The paper's four workloads, at a laptop scale factor: the published
   runs store 4x10^7 (128 B) / 10^6 (5 KB) keys and do 10^6 ops; we
   default to 1/100 of the keys and parameterised op counts, keeping
   the load factor and footprint ratios (see EXPERIMENTS.md). *)

let scale_default = 100

let paper ~small_value ~read_heavy ?(scale = scale_default) ~operation_count ()
  =
  let record_count = (if small_value then 40_000_000 else 1_000_000) / scale in
  make
    ~name:
      (Printf.sprintf "%s-%s"
         (if small_value then "128B" else "5KB")
         (if read_heavy then "read-heavy" else "write-heavy"))
    ~record_count ~operation_count
    ~read_proportion:(if read_heavy then 0.95 else 0.5)
    ~field_length:(if small_value then 128 else 5 * 1024)
    ()

(* Keys look like YCSB's "user<hash>" keys: fixed prefix + digits. *)
let key_of _t i = Printf.sprintf "user%019d" i

(* Deterministic printable value of the configured length, cheap to
   produce: a repeated pattern personalised by the key index. *)
let value_of t i =
  let b = Bytes.create t.field_length in
  let pat = Printf.sprintf "v%d-" i in
  let pn = String.length pat in
  let rec fill off =
    if off < t.field_length then begin
      let n = min pn (t.field_length - off) in
      Bytes.blit_string pat 0 b off n;
      fill (off + n)
    end
  in
  fill 0;
  Bytes.unsafe_to_string b

type op = Read of string | Update of string * string

let chooser t rng =
  match t.distribution with
  | Uniform -> fun () -> Rng.next_int rng t.record_count
  | Zipfian ->
    let z = Zipfian.create t.record_count in
    fun () -> Zipfian.next z rng
  | Scrambled_zipfian ->
    let z = Zipfian.create t.record_count in
    fun () -> Zipfian.next_scrambled z rng

let next_op t rng choose : op =
  let i = choose () in
  let key = key_of t i in
  if Rng.next_float rng < t.read_proportion then Read key
  else Update (key, value_of t i)
