(** The YCSB client harness: load a store, then drive it from a set of
    client threads, measuring per-operation latency and aggregate
    throughput. A functor over the substrate, so the same harness runs
    the examples on real threads and the benchmarks inside the
    virtual-time machine. *)

type db = {
  db_read : string -> bool;  (** returns hit/miss *)
  db_update : string -> string -> bool;
}

type result = {
  r_ops : int;
  r_elapsed_ns : int;
  r_hist : Histogram.t;
  r_read_hist : Histogram.t;
  r_update_hist : Histogram.t;
  r_hits : int;
  r_misses : int;
}

let throughput_ktps r =
  if r.r_elapsed_ns = 0 then 0.0
  else float_of_int r.r_ops /. (float_of_int r.r_elapsed_ns /. 1e9) /. 1e3

module Make (S : Platform.Sync_intf.S) = struct
  (* Populate the store with every key (the YCSB load phase). *)
  let load (w : Workload.t) (db : db) =
    for i = 0 to w.Workload.record_count - 1 do
      let key = Workload.key_of w i in
      ignore (db.db_update key (Workload.value_of w i))
    done

  type thread_result = {
    hist : Histogram.t;
    rhist : Histogram.t;
    uhist : Histogram.t;
    mutable hits : int;
    mutable misses : int;
  }

  let client_body (w : Workload.t) (db : db) ~tid ~ops (tr : thread_result) =
    let rng = Rng.create (w.Workload.seed + (7919 * tid)) in
    let choose = Workload.chooser w rng in
    for _ = 1 to ops do
      let op = Workload.next_op w rng choose in
      let t0 = S.now_ns () in
      (match op with
       | Workload.Read key ->
         if db.db_read key then tr.hits <- tr.hits + 1
         else tr.misses <- tr.misses + 1
       | Workload.Update (key, value) -> ignore (db.db_update key value));
      let dt = S.now_ns () - t0 in
      Histogram.record tr.hist dt;
      (match op with
       | Workload.Read _ -> Histogram.record tr.rhist dt
       | Workload.Update _ -> Histogram.record tr.uhist dt)
    done

  (* Run [w.operation_count] operations split across [threads] clients;
     [db_for] lets each client own its connection (socket backend) or
     share the library handle (plib backend). *)
  let run ?(threads = 1) (w : Workload.t) ~(db_for : int -> db) : result =
    let ops_per_thread = max 1 (w.Workload.operation_count / threads) in
    let results =
      Array.init threads (fun _ ->
        { hist = Histogram.create (); rhist = Histogram.create ();
          uhist = Histogram.create (); hits = 0; misses = 0 })
    in
    let t_start = S.now_ns () in
    let handles =
      List.init threads (fun tid ->
        let db = db_for tid in
        S.spawn
          ~name:(Printf.sprintf "ycsb-client-%d" tid)
          (fun () -> client_body w db ~tid ~ops:ops_per_thread results.(tid)))
    in
    List.iter S.join handles;
    let elapsed = S.now_ns () - t_start in
    let hist = Histogram.create () in
    let rhist = Histogram.create () in
    let uhist = Histogram.create () in
    let hits = ref 0 and misses = ref 0 in
    Array.iter
      (fun tr ->
        Histogram.merge ~into:hist tr.hist;
        Histogram.merge ~into:rhist tr.rhist;
        Histogram.merge ~into:uhist tr.uhist;
        hits := !hits + tr.hits;
        misses := !misses + tr.misses)
      results;
    { r_ops = ops_per_thread * threads; r_elapsed_ns = elapsed; r_hist = hist;
      r_read_hist = rhist; r_update_hist = uhist; r_hits = !hits;
      r_misses = !misses }
end
