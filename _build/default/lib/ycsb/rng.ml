(** SplitMix64: a tiny, fast, deterministic PRNG. Each simulated client
    thread owns one, seeded from (workload seed, thread id), so
    benchmark runs are bit-reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_i64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_i64 t) 1) (Int64.of_int bound))

let next_float t =
  (* 53 random bits into [0,1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_i64 t) 11) in
  float_of_int bits /. 9007199254740992.0
