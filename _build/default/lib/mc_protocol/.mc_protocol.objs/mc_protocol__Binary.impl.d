lib/mc_protocol/binary.ml: Buffer Char Int64 List String Types
