lib/mc_protocol/types.ml: Printf String
