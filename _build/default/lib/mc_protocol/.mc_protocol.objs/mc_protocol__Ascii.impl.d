lib/mc_protocol/ascii.ml: Buffer Int64 List Option Printf String Types
